//! Fixture tests for the rule engine: every rule must fire on its
//! known-bad fixture at the exact marked line, stay silent on the decoys,
//! and be silenced by (only) a *reasoned* suppression pragma — and, for
//! the cross-file families, by the ratchet baseline too.
//!
//! Fixtures live in `tests/fixtures/<rule_id>.rs` (dashes mapped to
//! underscores — the completeness test leans on that convention) and are
//! never compiled; the workspace audit skips them via the allowlist, so
//! they keep their violations on purpose.

use ca_audit::{analyze_source, AuditConfig, Baseline, Finding, Rule, Severity};
use proptest::prelude::*;

/// 1-based line of the first fixture line containing `needle`.
fn line_of(src: &str, needle: &str) -> u32 {
    src.lines()
        .position(|l| l.contains(needle))
        .unwrap_or_else(|| panic!("marker {needle:?} not found")) as u32
        + 1
}

fn strict(rel_path: &str, src: &str) -> Vec<Finding> {
    analyze_source(rel_path, src, &AuditConfig::strict())
}

/// (rule id, line) pairs, sorted, for compact exact-match assertions.
fn fired(findings: &[Finding]) -> Vec<(&'static str, u32)> {
    let mut v: Vec<_> = findings.iter().map(|f| (f.rule.id(), f.line)).collect();
    v.sort();
    v
}

/// Like [`fired`], restricted to one rule (for fixtures that trip
/// overlapping rules by construction).
fn fired_rule(findings: &[Finding], rule: Rule) -> Vec<u32> {
    findings.iter().filter(|f| f.rule == rule).map(|f| f.line).collect()
}

/// Copy of `src` with a reasoned `allow(rule)` pragma inserted directly
/// above every line containing `marker` (line-above suppression form).
fn pragma_above(src: &str, marker: &str, rule: &str) -> String {
    let mut out = String::new();
    for l in src.lines() {
        if l.contains(marker) {
            out.push_str(&format!("// ca-audit: allow({rule}) — fixture suppression check\n"));
        }
        out.push_str(l);
        out.push('\n');
    }
    out
}

/// Reads `tests/fixtures/<rule_id>.rs` (dashes → underscores).
fn fixture_for(rule: Rule) -> String {
    let path =
        format!("{}/tests/fixtures/{}.rs", env!("CARGO_MANIFEST_DIR"), rule.id().replace('-', "_"));
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("every rule needs a fixture file; {path}: {e}"))
}

/// The non-test analysis path each rule's fixture is judged at (chosen so
/// the rule is in scope and overlap with path-scoped rules stays minimal).
fn fixture_path(rule: Rule) -> &'static str {
    match rule {
        Rule::HashCollections => "crates/x/src/util.rs",
        Rule::WallClock => "crates/x/src/telemetry.rs",
        Rule::AdHocRng => "crates/x/src/sampling.rs",
        Rule::RawThread => "crates/x/src/workers.rs",
        Rule::EnvInjection => "crates/copyattack-core/src/baselines.rs",
        Rule::UnsafeAudit => "crates/x/src/lib.rs",
        Rule::UnorderedReduce => "crates/x/src/stats.rs",
        Rule::ServiceSleep => "crates/serve/src/shard.rs",
        Rule::NestedVec => "crates/datagen/src/organic.rs",
        Rule::ExactScan => "crates/mf/src/recommender.rs",
        Rule::SeedDiscipline => "crates/x/src/sampling.rs",
        Rule::IterationOrder => "crates/x/src/stats.rs",
        Rule::UnmeteredQuery => "crates/copyattack-core/src/campaign.rs",
        Rule::PragmaMissingReason => "crates/x/src/telemetry.rs",
        Rule::PragmaUnknownRule => "crates/x/src/anything.rs",
    }
}

#[test]
fn hash_collections_fires_at_the_marked_line_only() {
    let src = include_str!("fixtures/hash_collections.rs");
    let f = strict("crates/x/src/lib.rs", src);
    // The lib-root path also lacks #![forbid(unsafe_code)] — expected.
    assert_eq!(
        fired(&f),
        vec![("hash-collections", line_of(src, "MARK: fires")), ("unsafe-audit", 1)]
    );
}

#[test]
fn wall_clock_fires_on_both_clocks_never_in_strings_or_comments() {
    let src = include_str!("fixtures/wall_clock.rs");
    let f = strict("crates/x/src/telemetry.rs", src);
    assert_eq!(
        fired(&f),
        vec![
            ("wall-clock", line_of(src, "MARK: instant fires")),
            ("wall-clock", line_of(src, "MARK: system-time fires")),
        ]
    );
}

#[test]
fn ad_hoc_rng_fires_on_ambient_sources_not_seeded_ones() {
    let src = include_str!("fixtures/ad_hoc_rng.rs");
    let f = strict("crates/x/src/sampling.rs", src);
    assert_eq!(
        fired(&f),
        vec![
            ("ad-hoc-rng", line_of(src, "MARK: thread_rng fires")),
            ("ad-hoc-rng", line_of(src, "MARK: from_entropy fires")),
        ]
    );
}

#[test]
fn raw_thread_fires_on_std_paths_not_scope_handle_methods() {
    let src = include_str!("fixtures/raw_thread.rs");
    let f = strict("crates/x/src/workers.rs", src);
    assert_eq!(
        fired(&f),
        vec![
            ("raw-thread", line_of(src, "MARK: scope fires")),
            ("raw-thread", line_of(src, "MARK: spawn fires")),
        ]
    );
}

#[test]
fn seed_discipline_fires_on_literals_direct_and_propagated() {
    let src = include_str!("fixtures/seed_discipline.rs");
    let f = strict("crates/x/src/sampling.rs", src);
    assert_eq!(
        fired(&f),
        vec![
            ("seed-discipline", line_of(src, "MARK: literal fires")),
            ("seed-discipline", line_of(src, "MARK: propagated literal fires")),
        ]
    );
    // The same source under a tests/ tree is all test code: exempt.
    assert!(strict("crates/x/tests/sampling.rs", src).is_empty());
}

#[test]
fn iteration_order_fires_on_sinks_direct_looped_and_one_hop_away() {
    let src = include_str!("fixtures/iteration_order.rs");
    let f = strict("crates/x/src/stats.rs", src);
    assert_eq!(
        fired_rule(&f, Rule::IterationOrder),
        vec![
            line_of(src, "MARK: direct sum fires"),
            line_of(src, "MARK: loop accumulation fires"),
            line_of(src, "MARK: collect fires"),
            line_of(src, "MARK: tainted caller fires"),
        ]
    );
    // The declarations themselves are hash-collections findings — the
    // iteration-order family only adds the flow-sensitive layer.
    assert!(f.iter().any(|x| x.rule == Rule::HashCollections));
}

#[test]
fn unmetered_query_catches_the_planted_raw_top_k() {
    let src = include_str!("fixtures/unmetered_query.rs");
    let f = strict("crates/copyattack-core/src/campaign.rs", src);
    assert_eq!(
        fired(&f),
        vec![
            ("unmetered-query", line_of(src, "MARK: planted unmetered top_k fires")),
            ("unmetered-query", line_of(src, "MARK: planted unmetered batch fires")),
        ]
    );
    // The same source on the platform side of the fence is the metered
    // surface's own implementation: no attack-side root reaches it.
    assert!(strict("crates/recsys/src/blackbox.rs", src).is_empty());
    assert!(strict("crates/serve/src/shard.rs", src).is_empty());
}

#[test]
fn env_injection_fires_in_attack_code_but_not_in_the_env_itself() {
    let src = include_str!("fixtures/env_injection.rs");
    let expected = vec![
        ("env-injection", line_of(src, "MARK: inject_user fires")),
        ("env-injection", line_of(src, "MARK: try_inject_user fires")),
        ("env-injection", line_of(src, "MARK: append_profile fires")),
    ];
    let sorted = |mut v: Vec<(&'static str, u32)>| {
        v.sort();
        v
    };
    // Attack code anywhere in copyattack-core is in scope.
    assert_eq!(fired(&strict("crates/copyattack-core/src/baselines.rs", src)), sorted(expected));
    // env.rs *is* the injection surface: the same calls are its
    // implementation, not a bypass.
    assert!(strict("crates/copyattack-core/src/env.rs", src).is_empty());
    // Outside the attack crate, platform-side code injects freely.
    assert!(strict("crates/serve/src/shard.rs", src).is_empty());
    assert!(strict("src/pipeline.rs", src).is_empty());
}

#[test]
fn service_sleep_fires_only_in_service_path_crates() {
    let src = include_str!("fixtures/service_sleep.rs");
    let expected = vec![
        ("service-sleep", line_of(src, "MARK: qualified sleep fires")),
        ("service-sleep", line_of(src, "MARK: imported sleep fires")),
    ];
    // Both service-path crates are in scope: the live platform and the
    // fault/retry layer it is built on.
    assert_eq!(fired(&strict("crates/serve/src/shard.rs", src)), expected);
    assert_eq!(fired(&strict("crates/recsys/src/faults.rs", src)), expected);
    // The same source elsewhere is not bound by the logical-clock contract.
    assert!(strict("crates/train/src/driver.rs", src).is_empty());
    assert!(strict("src/pipeline.rs", src).is_empty());
}

#[test]
fn nested_vec_fires_only_in_data_plane_crates() {
    let src = include_str!("fixtures/nested_vec.rs");
    let expected = vec![
        ("nested-vec", line_of(src, "MARK: field fires")),
        ("nested-vec", line_of(src, "MARK: return type fires")),
    ];
    // Both compact-data-plane crates are in scope.
    assert_eq!(fired(&strict("crates/recsys/src/dataset.rs", src)), expected);
    assert_eq!(fired(&strict("crates/datagen/src/latent.rs", src)), expected);
    // Elsewhere the nested shape carries no dataset-scale state contract.
    assert!(strict("crates/mf/src/recommender.rs", src).is_empty());
    assert!(strict("src/pipeline.rs", src).is_empty());
}

#[test]
fn exact_scan_fires_everywhere_except_the_retrieval_path() {
    let src = include_str!("fixtures/exact_scan.rs");
    let expected = vec![
        ("exact-scan", line_of(src, "MARK: method call fires")),
        ("exact-scan", line_of(src, "MARK: chained call fires")),
    ];
    // Full-catalog scans are flagged wherever they appear off-path…
    assert_eq!(fired(&strict("crates/mf/src/recommender.rs", src)), expected);
    assert_eq!(fired(&strict("src/pipeline.rs", src)), expected);
    assert_eq!(fired(&strict("tests/ann_parity.rs", src)), expected);
    // …but the engine module and the ANN crate *are* the retrieval path.
    // (engine.rs is also data-plane scoped, so filter to this rule only.)
    let silent = |path| strict(path, src).iter().all(|f| f.rule != Rule::ExactScan);
    assert!(silent("crates/recsys/src/engine.rs"));
    assert!(silent("crates/ann/src/ivf.rs"));
    assert!(silent("crates/ann/src/recommender.rs"));
}

#[test]
fn unsafe_audit_fires_on_lib_roots_only() {
    let src = include_str!("fixtures/unsafe_audit.rs");
    assert_eq!(fired(&strict("crates/x/src/lib.rs", src)), vec![("unsafe-audit", 1)]);
    assert_eq!(fired(&strict("src/lib.rs", src)), vec![("unsafe-audit", 1)]);
    // Non-root modules and binaries are out of the rule's scope.
    assert!(strict("crates/x/src/util.rs", src).is_empty());
    assert!(strict("crates/x/src/main.rs", src).is_empty());
    // A file-scope pragma (anywhere in the file) suppresses it.
    let pragmad =
        format!("{src}\n// ca-audit: allow(unsafe-audit) — FFI shim needs raw pointers\n");
    assert!(strict("crates/x/src/lib.rs", &pragmad).is_empty());
}

#[test]
fn unordered_reduce_fires_on_par_map_chains_not_map_reduce() {
    let src = include_str!("fixtures/unordered_reduce.rs");
    let f = strict("crates/x/src/stats.rs", src);
    assert_eq!(fired(&f), vec![("unordered-reduce", line_of(src, "MARK: sum fires"))]);
}

#[test]
fn reasoned_pragmas_suppress_on_their_line_and_the_line_below() {
    let src = include_str!("fixtures/suppressed.rs");
    assert!(
        strict("crates/x/src/telemetry.rs", src).is_empty(),
        "reasoned pragmas must fully silence the fixture"
    );
}

#[test]
fn reasonless_pragma_is_a_finding_and_suppresses_nothing() {
    let src = include_str!("fixtures/pragma_missing_reason.rs");
    let f = strict("crates/x/src/telemetry.rs", src);
    assert_eq!(
        fired(&f),
        vec![
            ("pragma-missing-reason", line_of(src, "ca-audit: allow(wall-clock)")),
            ("wall-clock", line_of(src, "MARK: still fires")),
        ]
    );
}

#[test]
fn unknown_rule_in_pragma_is_reported() {
    let src = include_str!("fixtures/pragma_unknown_rule.rs");
    let f = strict("crates/x/src/anything.rs", src);
    assert_eq!(fired(&f), vec![("pragma-unknown-rule", line_of(src, "MARK: typo'd"))]);
}

/// Markers on each code rule's violating lines (the completeness test
/// drives pragma suppression off this table; pragma-hygiene rules are
/// deliberately unsuppressible and are exercised above instead).
fn violation_markers(rule: Rule) -> Option<&'static [&'static str]> {
    match rule {
        Rule::HashCollections => Some(&["MARK: fires"]),
        Rule::WallClock => Some(&["MARK: instant fires", "MARK: system-time fires"]),
        Rule::AdHocRng => Some(&["MARK: thread_rng fires", "MARK: from_entropy fires"]),
        Rule::RawThread => Some(&["MARK: scope fires", "MARK: spawn fires"]),
        Rule::EnvInjection => Some(&[
            "MARK: inject_user fires",
            "MARK: try_inject_user fires",
            "MARK: append_profile fires",
        ]),
        Rule::UnsafeAudit => Some(&["MARK: unsafe fixture"]),
        Rule::UnorderedReduce => Some(&["MARK: sum fires"]),
        Rule::ServiceSleep => Some(&["MARK: qualified sleep fires", "MARK: imported sleep fires"]),
        Rule::NestedVec => Some(&["MARK: field fires", "MARK: return type fires"]),
        Rule::ExactScan => Some(&["MARK: method call fires", "MARK: chained call fires"]),
        Rule::SeedDiscipline => Some(&["MARK: literal fires", "MARK: propagated literal fires"]),
        Rule::IterationOrder => Some(&[
            "MARK: direct sum fires",
            "MARK: loop accumulation fires",
            "MARK: collect fires",
            "MARK: tainted caller fires",
        ]),
        Rule::UnmeteredQuery => {
            Some(&["MARK: planted unmetered top_k fires", "MARK: planted unmetered batch fires"])
        }
        Rule::PragmaMissingReason | Rule::PragmaUnknownRule => None,
    }
}

#[test]
fn every_rule_is_complete_with_docs_fixture_firing_and_suppression() {
    for rule in Rule::ALL {
        assert!(!rule.message().is_empty(), "{rule}: empty message");
        assert!(!rule.hint().is_empty(), "{rule}: empty hint");
        let src = fixture_for(rule); // panics when the fixture file is missing
        let path = fixture_path(rule);
        let before = strict(path, &src);
        assert!(
            before.iter().any(|f| f.rule == rule),
            "{rule}: fixture must make its own rule fire at {path}"
        );
        let Some(markers) = violation_markers(rule) else { continue };
        // UnsafeAudit suppresses file-scope; everything else line-by-line.
        let patched = if rule == Rule::UnsafeAudit {
            format!("{src}\n// ca-audit: allow(unsafe-audit) — fixture suppression check\n")
        } else {
            let mut patched = src.clone();
            for m in markers {
                patched = pragma_above(&patched, m, rule.id());
            }
            patched
        };
        assert!(
            !strict(path, &patched).iter().any(|f| f.rule == rule),
            "{rule}: reasoned pragma above each violation must silence the rule"
        );
    }
}

#[test]
fn new_rule_families_are_baseline_suppressible() {
    for rule in [Rule::SeedDiscipline, Rule::IterationOrder, Rule::UnmeteredQuery] {
        let src = fixture_for(rule);
        let path = fixture_path(rule);
        let findings: Vec<Finding> =
            strict(path, &src).into_iter().filter(|f| f.rule == rule).collect();
        assert!(!findings.is_empty());
        let baseline = Baseline::parse(&Baseline::render(&findings)).unwrap();
        let (left, suppressed, stale) = baseline.apply(findings.clone());
        assert!(left.is_empty(), "{rule}: baseline must absorb its own findings");
        assert_eq!(suppressed, findings.len());
        assert!(stale.is_empty());
    }
}

#[test]
fn severities_gate_as_documented() {
    assert_eq!(Rule::IterationOrder.severity(), Severity::Warn);
    for rule in [Rule::SeedDiscipline, Rule::UnmeteredQuery, Rule::HashCollections] {
        assert_eq!(rule.severity(), Severity::Deny, "{rule}");
    }
    let denies = Rule::ALL.iter().filter(|r| r.severity() == Severity::Deny).count();
    assert_eq!(denies, Rule::ALL.len() - 1, "iteration-order is the only Warn rule");
}

#[test]
fn every_rule_has_a_distinct_id_roundtripping_through_from_id() {
    for r in Rule::ALL {
        assert_eq!(Rule::from_id(r.id()), Some(r));
    }
    let mut ids: Vec<_> = Rule::ALL.iter().map(|r| r.id()).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), Rule::ALL.len(), "rule ids must be unique");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn rule_id_round_trip_holds_for_every_index(i in 0usize..15) {
        let rule = Rule::ALL[i];
        prop_assert_eq!(Rule::from_id(rule.id()), Some(rule));
        prop_assert_eq!(rule.id(), rule.to_string());
    }

    #[test]
    fn corrupted_rule_ids_never_resolve(i in 0usize..15, tail in 0u32..1000) {
        let corrupted = format!("{}-{tail}", Rule::ALL[i].id());
        prop_assert_eq!(Rule::from_id(&corrupted), None);
        let truncated = &Rule::ALL[i].id()[..Rule::ALL[i].id().len() - 1];
        prop_assert_eq!(Rule::from_id(truncated), None);
    }
}

#[test]
fn allowlist_entries_beat_strict_findings() {
    let src = include_str!("fixtures/wall_clock.rs");
    let cfg = AuditConfig::workspace_default();
    assert!(
        analyze_source("crates/bench/src/bin/offline.rs", src, &cfg).is_empty(),
        "bench binaries are fully exempt by policy"
    );
    assert!(
        !analyze_source("crates/train/src/driver.rs", src, &cfg).is_empty(),
        "library crates get no such pass"
    );
}
