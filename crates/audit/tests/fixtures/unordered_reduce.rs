//! Known-bad fixture: unordered-reduce must fire on the float reduction
//! chained off `ca_par::map`, but never on the blessed `map_reduce` path.

fn bad_total(xs: &[f32]) -> f32 {
    ca_par::map(xs, |_, &x| x * x).iter().sum::<f32>() // MARK: sum fires
}

fn blessed_total(xs: &[f32]) -> f32 {
    ca_par::map_reduce(xs, 64, |c| c.iter().sum::<f32>(), 0.0f32, |a, b| a + b)
}

fn serial_total(xs: &[f32]) -> f32 {
    xs.iter().sum::<f32>() // no par map in the statement: silent
}
