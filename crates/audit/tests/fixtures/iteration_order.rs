//! Fixture for the iteration-order rule. Never compiled; the workspace
//! audit skips this tree via the allowlist.
//!
//! Iterating a HashMap/HashSet into an order-sensitive sink — float
//! accumulation, Vec collection, hashing — fires; ordered collections and
//! order-insensitive uses stay silent. (The HashMap *declarations* here
//! also trip hash-collections; the fixture tests filter to this rule.)

fn direct_sum(counts: &HashMap<u32, f32>) -> f32 {
    counts.values().sum() // MARK: direct sum fires
}

fn loop_accumulate(tags: HashSet<u64>) -> u64 {
    let mut acc = 0u64;
    for t in &tags { // MARK: loop accumulation fires
        acc += t;
    }
    acc
}

fn export_order(counts: &HashMap<u32, f32>) -> Vec<u32> {
    counts.keys().copied().collect() // MARK: collect fires
}

fn two_hops_away(counts: &HashMap<u32, f32>) -> f32 {
    export_order(counts).iter().map(|k| *k as f32).sum() // MARK: tainted caller fires
}

fn btree_collect_is_fine(counts: &HashMap<u32, f32>) -> BTreeSet<u32> {
    counts.keys().copied().collect::<BTreeSet<u32>>() // decoy: ordered target
}

fn membership_is_fine(tags: &HashSet<u64>, probe: u64) -> bool {
    tags.contains(&probe) // decoy: no iteration at all
}

fn counting_is_fine(counts: &HashMap<u32, f32>) -> usize {
    let mut seen = 0usize;
    for _k in counts.keys() { // decoy: loop body never accumulates values
        seen = seen.max(1);
    }
    seen
}
