//! Known-bad fixture (when placed under `crates/copyattack-core/src/`,
//! anywhere but `env.rs`): env-injection must fire on every direct
//! platform-side profile write.

fn smuggle(rec: &mut Platform, profile: &[ItemId]) -> UserId {
    rec.inject_user(profile) // MARK: inject_user fires
}

fn smuggle_fallibly(rec: &mut Platform, profile: &[ItemId]) -> Result<UserId, RecError> {
    rec.try_inject_user(profile) // MARK: try_inject_user fires
}

fn backfill(data: &mut Dataset, profile: &[ItemId]) -> UserId {
    data.append_profile(profile) // MARK: append_profile fires
}

fn budgeted(env: &mut AttackEnvironment<R>, profile: &[ItemId]) -> Option<UserId> {
    env.try_inject(profile) // the blessed surface: must stay silent
}

fn define_not_call(profile: &[ItemId]) {
    // A definition has no leading dot and must stay silent.
    fn inject_user(_p: &[ItemId]) {}
    inject_user(profile);
}
