//! Fixture for the unmetered-query rule. Never compiled; the workspace
//! audit skips this tree via the allowlist.
//!
//! Analyzed at a `crates/copyattack-core/src/` path, every non-test fn
//! here is an attack-side reachability root. Raw `.top_k(…)` calls that
//! the roots reach without crossing the metered surface fire; surface
//! impls and test code are exempt automatically.

fn greedy_rank(platform: &Platform) -> Vec<u32> {
    platform.top_k(7, 10) // MARK: planted unmetered top_k fires
}

fn batch_rank(platform: &Platform) -> Vec<RankList> {
    platform.top_k_batch(&[1, 2], 10) // MARK: planted unmetered batch fires
}

fn helper_indirect(platform: &Platform) -> usize {
    greedy_rank(platform).len() // decoy: flagged at the callee's line, not here
}

fn metered_path(env: &AttackEnvironment) -> Vec<u32> {
    env.try_top_k(7, 10).unwrap() // decoy: the metered surface entry point
}

impl FallibleBlackBox for LocalFake {
    fn try_top_k(&self, user: u32, k: usize) -> Result<Vec<u32>, Fault> {
        Ok(self.inner.top_k(user, k)) // decoy: surface trait impl is exempt
    }
}

#[cfg(test)]
mod tests {
    fn probe(platform: &Platform) -> Vec<u32> {
        platform.top_k(1, 5) // decoy: test code is exempt
    }
}
