//! Known-bad fixture: a reasonless pragma is itself a finding and
//! suppresses nothing — the clock read below it must still fire.

fn sneaky() -> std::time::Instant {
    // ca-audit: allow(wall-clock)
    std::time::Instant::now() // MARK: still fires
}
