//! Known-bad fixture: exact-scan must fire on every direct
//! `.score_batch(` call outside the shared retrieval path (the engine
//! module and the `ca-ann` crate), where a full-catalog scan bypasses the
//! Top-k entry points and the IVF sublinear path.

fn rank_everything(engine: &Engine, users: &[UserId], out: &mut Matrix) {
    engine.score_batch(users, out) // MARK: method call fires
}

fn rank_chained(engine: &Engine, users: &[UserId]) -> Matrix {
    let mut out = Matrix::zeros(users.len(), engine.n_items());
    engine.as_ref().score_batch(users, &mut out); // MARK: chained call fires
    out
}

// A definition is the implementation, not a bypass: no leading dot.
fn score_batch(users: &[UserId], out: &mut Matrix) {
    out.fill(0.0);
}

trait Scoring {
    // Trait declarations must stay silent too.
    fn score_batch(&self, users: &[UserId], out: &mut Matrix);
}

fn ranked_properly(engine: &Engine, users: &[UserId]) -> Vec<Vec<ItemId>> {
    // The blessed entry point: must stay silent.
    auto_batch_top_k(engine, users, 20)
}

fn mentioned_in_prose() {
    // score_batch( in a comment never fires, nor does "score_batch(" here:
    let _doc = "call engine.score_batch(users, &mut out) at your peril";
}
