//! Fixture for the seed-discipline rule. Never compiled; the workspace
//! audit skips this tree via the allowlist.
//!
//! RNG constructions must derive their seed from the split_seed /
//! config-seed discipline. Literals fire — directly, or propagated one
//! call-graph hop through a bare seed parameter.

fn build_direct() -> StdRng {
    StdRng::seed_from_u64(42) // MARK: literal fires
}

fn build_from(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed) // decoy: bare seed parameter, judged at callers
}

fn caller_literal() -> StdRng {
    build_from(0xDEAD_BEEF) // MARK: propagated literal fires
}

fn caller_disciplined(cfg_seed: u64) -> StdRng {
    let derived = split_seed(cfg_seed, 3); // decoy: split_seed derivation
    let _ = build_from(derived);
    let _ = StdRng::seed_from_u64(cfg_seed ^ 7); // decoy: config-seed expression
    build_from(split_seed(cfg_seed, 4)) // decoy: derived at the call site
}

fn opaque_is_silent(knobs: &Knobs) -> StdRng {
    StdRng::seed_from_u64(knobs.fingerprint()) // decoy: unresolvable, silent by design
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_pin_literal_seeds() {
        let _ = StdRng::seed_from_u64(7); // decoy: test code is exempt
        let _ = build_from(99); // decoy: literal through the parameter, still test code
    }
}
