//! Known-good fixture: every violation here carries a reasoned pragma, so
//! the file must produce zero findings.

fn timed_above() -> std::time::Instant {
    // ca-audit: allow(wall-clock) — fixture exercising line-above suppression
    std::time::Instant::now()
}

fn timed_inline() -> std::time::Instant {
    std::time::Instant::now() // ca-audit: allow(wall-clock) — same-line suppression
}

fn membership() -> bool {
    // ca-audit: allow(hash-collections) — membership-only set, never iterated
    let s = std::collections::HashSet::from([1u32]);
    s.contains(&1)
}
