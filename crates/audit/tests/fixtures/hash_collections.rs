//! Known-bad fixture: hash-collections must fire exactly once.
//! Decoy: HashMap named in this comment must stay silent.
const DECOY: &str = "HashSet inside a string must stay silent";

fn bad() -> u32 {
    let mut seen = std::collections::HashSet::new(); // MARK: fires
    seen.insert(1u32);
    seen.len() as u32
}
