//! Known-bad fixture: ad-hoc-rng must fire on both ambient RNG sources.

fn roll() -> u32 {
    let mut rng = rand::thread_rng(); // MARK: thread_rng fires
    rng.gen_range(0..6)
}

fn fresh() -> rand::rngs::StdRng {
    rand::rngs::StdRng::from_entropy() // MARK: from_entropy fires
}

fn fine(cfg_seed: u64) -> rand::rngs::StdRng {
    use rand::SeedableRng;
    rand::rngs::StdRng::seed_from_u64(cfg_seed ^ 1) // seeded: must stay silent
}
