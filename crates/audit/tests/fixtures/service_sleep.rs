//! Known-bad fixture: service-sleep must fire on real-time blocking in
//! service-path code (ca-serve / ca-recsys sources only).
//! Decoy: thread::sleep in this comment must stay silent.

fn qualified_backoff() {
    std::thread::sleep(std::time::Duration::from_millis(10)); // MARK: qualified sleep fires
}

fn imported_backoff() {
    use std::thread;
    thread::sleep(std::time::Duration::from_secs(1)); // MARK: imported sleep fires
}

fn decoy() -> &'static str {
    "calling thread::sleep(d) in a string must stay silent"
}
