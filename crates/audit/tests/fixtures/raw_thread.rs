//! Known-bad fixture: raw-thread must fire on spawn and scope, but not on
//! the scope handle's own `.spawn` method call.

fn fan_out(xs: &[u32]) -> u32 {
    let mut total = 0;
    std::thread::scope(|s| { // MARK: scope fires
        let h = s.spawn(|| xs.iter().sum::<u32>()); // method call: silent
        total = h.join().unwrap();
    });
    total
}

fn detached() {
    std::thread::spawn(|| ()); // MARK: spawn fires
}
