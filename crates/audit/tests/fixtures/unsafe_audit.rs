//! Known-bad fixture: analyzed under a `crates/*/src/lib.rs` path, the
//! missing `#![forbid(unsafe_code)]` must fire at line 1.

pub fn library_entry() -> u32 {
    7
}
