//! Known-bad fixture: nested-vec must fire on `Vec<Vec<…>>` in data-plane
//! crates (ca-recsys / ca-datagen sources only).
//! Decoy: Vec<Vec<u32>> in this comment must stay silent.

struct Profiles {
    rows: Vec<Vec<u32>>, // MARK: field fires
}

fn batch_result() -> Vec<Vec<u32>> { // MARK: return type fires
    Vec::new()
}

fn decoys() {
    let flat: Vec<u32> = Vec::new();
    let boxed: Vec<Box<[u32]>> = Vec::new();
    let s = "a Vec<Vec<u32>> inside a string must stay silent";
    let _ = (flat, boxed, s);
}
