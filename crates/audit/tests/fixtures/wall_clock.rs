//! Known-bad fixture: wall-clock must fire on both clock reads.
//! Decoy: Instant::now in this comment must stay silent.

fn elapsed() -> f64 {
    let t0 = std::time::Instant::now(); // MARK: instant fires
    t0.elapsed().as_secs_f64()
}

fn stamp() -> std::time::SystemTime {
    std::time::SystemTime::now() // MARK: system-time fires
}

fn decoy() -> &'static str {
    "calling Instant::now() in a string must stay silent"
}
