//! Known-bad fixture: a pragma naming a rule id that does not exist must
//! be reported (a typo would otherwise silently suppress nothing).

// ca-audit: allow(wallclock) — MARK: typo'd rule id fires
fn innocuous() {}
