//! Known-bad fixture (when placed under `crates/copyattack-core/src/`):
//! raw-top-k must fire on both direct ranking calls.

fn peek(rec: &mut Platform) -> Vec<ItemId> {
    rec.top_k(UserId(0), 10) // MARK: top_k fires
}

fn peek_batch(rec: &mut Platform, users: &[UserId]) -> Vec<Vec<ItemId>> {
    rec.top_k_batch(users, 10) // MARK: top_k_batch fires
}

fn metered(rec: &mut Platform) -> Result<Vec<ItemId>, RecError> {
    rec.try_top_k(UserId(0), 10) // metered wrapper: must stay silent
}
