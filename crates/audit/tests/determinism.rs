//! The parallel per-file phase must not leak scheduling into the report.
//!
//! `analyze_sources` fans the lex/parse/local-rule phase out through
//! `ca_par::map` and keeps every cross-file pass serial over BTree-ordered
//! state, so the rendered report is a pure function of the sources. This
//! test pins that claim: the same workspace analyzed at 1 and at 4 worker
//! threads must produce byte-identical JSON, human, and GitHub output.
//!
//! Thread-count sweeps share process-global state (`ca_par::set_threads`),
//! so the whole sweep lives in one test fn and runs sequentially.

use ca_audit::{analyze_sources, report, AuditConfig, AuditOutcome, Baseline};

/// A small synthetic workspace that exercises every cross-file pass:
/// seed propagation, hash-iteration taint, and top-k reachability.
fn sources() -> Vec<(String, String)> {
    let mut files = Vec::new();
    files.push((
        "crates/copyattack-core/src/drive.rs".to_string(),
        r#"
fn build_from(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}
fn campaign() -> StdRng {
    let _ = HashMap::<u32, f32>::new();
    build_from(41)
}
fn rank(platform: &Platform) -> Vec<u32> {
    platform.top_k(1, 10)
}
"#
        .to_string(),
    ));
    files.push((
        "crates/x/src/stats.rs".to_string(),
        r#"
fn mass(counts: &HashMap<u32, f32>) -> f32 {
    counts.values().sum()
}
fn order(counts: &HashMap<u32, f32>) -> Vec<u32> {
    counts.keys().copied().collect()
}
fn chained(counts: &HashMap<u32, f32>) -> f32 {
    order(counts).iter().map(|k| *k as f32).sum()
}
"#
        .to_string(),
    ));
    for i in 0..20 {
        files.push((
            format!("crates/x/src/bulk_{i:02}.rs"),
            format!(
                "fn noise_{i}() -> u64 {{\n    let now = std::time::Instant::now();\n    let _ = now;\n    {i}\n}}\n"
            ),
        ));
    }
    // `analyze_sources` inherits collect_sources' contract: paths sorted.
    files.sort_by(|a, b| a.0.cmp(&b.0));
    files
}

fn render_all(cfg: &AuditConfig) -> (String, String, String) {
    let owned = sources();
    let refs: Vec<(&str, &str)> = owned.iter().map(|(p, s)| (p.as_str(), s.as_str())).collect();
    let findings = analyze_sources(&refs, cfg);
    let (findings, baselined, stale) = Baseline::empty().apply(findings);
    let outcome = AuditOutcome { findings, baselined, stale };
    (report::human(&outcome), report::json(&outcome), report::github(&outcome))
}

#[test]
fn reports_are_byte_identical_at_one_and_four_threads() {
    let cfg = AuditConfig::workspace_default();
    let mut per_thread = Vec::new();
    for threads in [1usize, 4] {
        ca_par::set_threads(Some(threads));
        per_thread.push(render_all(&cfg));
    }
    ca_par::set_threads(None);

    let (h1, j1, g1) = &per_thread[0];
    let (h4, j4, g4) = &per_thread[1];
    assert!(!j1.is_empty() && j1.contains("seed-discipline"), "sanity: {j1}");
    assert_eq!(h1, h4, "human report differs across thread counts");
    assert_eq!(j1, j4, "json report differs across thread counts");
    assert_eq!(g1, g4, "github report differs across thread counts");
}
