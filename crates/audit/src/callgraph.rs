//! An approximate, workspace-wide call graph over the symbol table.
//!
//! Edges come from two token shapes inside function bodies — `name(…)`
//! free/associated calls and `.name(…)` method calls — resolved by bare
//! name against every same-named function in the workspace (see
//! [`crate::symbols`] for why that over-approximation is the sound
//! direction). Macro invocations (`name!(…)`) are *not* calls; tokens
//! belonging to a nested `fn` are attributed to the nested function only.
//!
//! The graph answers one kind of question for the rules: *which functions
//! can an attack-side entry point reach without crossing the metered
//! surface?* ([`CallGraph::reachable`] takes a blocklist predicate for
//! exactly that).

use std::collections::BTreeMap;

use crate::lexer::{Tok, TokKind};
use crate::symbols::{FnRef, Workspace};

/// Splits the argument list of a call whose `(` sits at `open` into
/// top-level token ranges (exclusive). Comma splitting tracks
/// paren/bracket/brace *and* angle depth, so `f(Map::<u32, u64>::new())`
/// stays one argument. Returns an empty list when `open` is not a `(`.
pub fn call_args(toks: &[Tok], open: usize) -> Vec<(usize, usize)> {
    if !toks.get(open).is_some_and(|t| t.is_punct('(')) {
        return Vec::new();
    }
    let mut close = open;
    let mut depth = 0isize;
    while close < toks.len() {
        if toks[close].is_punct('(') {
            depth += 1;
        } else if toks[close].is_punct(')') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        }
        close += 1;
    }
    let close = close.min(toks.len());
    let mut args = Vec::new();
    let mut seg = open + 1;
    let mut d = 0isize;
    let mut angle = 0isize;
    let mut j = open + 1;
    while j <= close && j < toks.len() {
        let boundary = j == close || (d == 0 && angle <= 0 && toks[j].is_punct(','));
        if boundary {
            if j > seg {
                args.push((seg, j));
            }
            seg = j + 1;
        } else {
            match &toks[j].kind {
                TokKind::Punct('(') | TokKind::Punct('[') | TokKind::Punct('{') => d += 1,
                TokKind::Punct(')') | TokKind::Punct(']') | TokKind::Punct('}') => d -= 1,
                TokKind::Punct('<') => angle += 1,
                TokKind::Punct('>') if !(j > 0 && toks[j - 1].is_punct('-')) => angle -= 1,
                _ => {}
            }
        }
        j += 1;
    }
    args
}

/// One call site inside a function body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CallSite {
    /// Dense id (into [`Workspace::all_fns`]) of the calling function.
    pub caller: usize,
    /// The called name (bare identifier).
    pub name: String,
    /// 1-based line of the call.
    pub line: u32,
    /// Token index of the name in the caller's file.
    pub tok: usize,
    /// Whether this is a `.name(…)` method call (vs a path/free call).
    pub method: bool,
}

/// The call graph: adjacency over dense function ids plus the raw sites.
#[derive(Clone, Debug, Default)]
pub struct CallGraph {
    /// `calls[f]` = sorted, deduped callee ids of function `f`.
    pub calls: Vec<Vec<usize>>,
    /// `callers[f]` = sorted, deduped caller ids of function `f`.
    pub callers: Vec<Vec<usize>>,
    /// Every call site, in (file, token) order.
    pub sites: Vec<CallSite>,
}

/// Keywords and builtins that look like `name(…)` but are never calls.
const NON_CALL_IDENTS: [&str; 14] = [
    "if", "while", "match", "for", "loop", "return", "in", "as", "move", "fn", "let", "else",
    "impl", "where",
];

impl CallGraph {
    /// Builds the graph for a workspace.
    pub fn build(ws: &Workspace) -> CallGraph {
        let n = ws.all_fns.len();
        let mut calls: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut callers: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut sites = Vec::new();

        // Map FnRef → dense id once (BTreeMap keeps it deterministic).
        let ids: BTreeMap<FnRef, usize> =
            ws.all_fns.iter().enumerate().map(|(i, &r)| (r, i)).collect();

        for (fid, &fref) in ws.all_fns.iter().enumerate() {
            let file = ws.file(fref);
            let Some((lo, hi)) = ws.item(fref).body else { continue };
            let nested = file.nested_fn_bodies(fref.item);
            let mut i = lo;
            while i < hi {
                // Skip tokens that belong to a nested fn (they get their
                // own node; double-attribution would blur reachability).
                if let Some(&(_, nend)) =
                    nested.iter().find(|&&(ns, ne)| ns <= i && i < ne.max(ns + 1))
                {
                    i = nend.max(i + 1);
                    continue;
                }
                let t = &file.toks[i];
                if let TokKind::Ident(name) = &t.kind {
                    let next_is_paren = file.toks.get(i + 1).is_some_and(|t| t.is_punct('('));
                    let next_is_bang = file.toks.get(i + 1).is_some_and(|t| t.is_punct('!'));
                    if next_is_paren && !next_is_bang && !NON_CALL_IDENTS.contains(&name.as_str()) {
                        let method = i > lo && file.toks[i - 1].is_punct('.');
                        sites.push(CallSite {
                            caller: fid,
                            name: name.clone(),
                            line: t.line,
                            tok: i,
                            method,
                        });
                        if let Some(defs) = ws.fns_by_name.get(name) {
                            for &callee_ref in defs {
                                if let Some(&cid) = ids.get(&callee_ref) {
                                    calls[fid].push(cid);
                                    callers[cid].push(fid);
                                }
                            }
                        }
                    }
                }
                i += 1;
            }
        }
        for v in calls.iter_mut().chain(callers.iter_mut()) {
            v.sort_unstable();
            v.dedup();
        }
        CallGraph { calls, callers, sites }
    }

    /// Forward reachability: every function reachable from `seeds` along
    /// call edges, **without expanding** nodes where `blocked` holds
    /// (blocked nodes are not marked and their callees are not visited
    /// through them). Blocked seeds are skipped entirely.
    pub fn reachable(&self, seeds: &[usize], blocked: impl Fn(usize) -> bool) -> Vec<bool> {
        let mut seen = vec![false; self.calls.len()];
        let mut queue: Vec<usize> = Vec::new();
        for &s in seeds {
            if s < seen.len() && !seen[s] && !blocked(s) {
                seen[s] = true;
                queue.push(s);
            }
        }
        while let Some(f) = queue.pop() {
            for &g in &self.calls[f] {
                if !seen[g] && !blocked(g) {
                    seen[g] = true;
                    queue.push(g);
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_source;
    use crate::symbols::Workspace;

    fn ws2(a: &str, b: &str) -> (Workspace, CallGraph) {
        let ws = Workspace::new(vec![parse_source("a.rs", a), parse_source("b.rs", b)]);
        let g = CallGraph::build(&ws);
        (ws, g)
    }

    fn id_of(ws: &Workspace, name: &str) -> usize {
        let r = ws.fns_by_name[name][0];
        ws.fn_id(r).unwrap()
    }

    #[test]
    fn cross_file_edges_resolve_by_name() {
        let (ws, g) = ws2("fn entry() { helper(); }", "fn helper() { leaf(); } fn leaf() {}");
        let (e, h, l) = (id_of(&ws, "entry"), id_of(&ws, "helper"), id_of(&ws, "leaf"));
        assert_eq!(g.calls[e], vec![h]);
        assert_eq!(g.calls[h], vec![l]);
        assert_eq!(g.callers[l], vec![h]);
        let seen = g.reachable(&[e], |_| false);
        assert!(seen[e] && seen[h] && seen[l]);
    }

    #[test]
    fn blocked_nodes_stop_traversal() {
        let (ws, g) = ws2("fn entry() { surface(); }", "fn surface() { secret(); } fn secret() {}");
        let (e, s, sec) = (id_of(&ws, "entry"), id_of(&ws, "surface"), id_of(&ws, "secret"));
        let seen = g.reachable(&[e], |f| f == s);
        assert!(seen[e]);
        assert!(!seen[s], "blocked node is not marked");
        assert!(!seen[sec], "nothing behind the block is reached");
    }

    #[test]
    fn macros_and_keywords_are_not_calls() {
        let (_, g) = ws2("fn f() { println!(\"x\"); if (true) { return (3); } }", "fn g() {}");
        assert!(g
            .sites
            .iter()
            .all(|s| s.name != "println" && s.name != "if" && s.name != "return"));
    }

    #[test]
    fn call_args_split_at_top_level_commas_only() {
        let (toks, _) = crate::lexer::lex("f(a, g(b, c), Map::<u32, u64>::new(), 42)");
        let open = toks.iter().position(|t| t.is_punct('(')).unwrap();
        let args = call_args(&toks, open);
        assert_eq!(args.len(), 4);
        let first = &toks[args[0].0..args[0].1];
        assert!(first.len() == 1 && first[0].is_ident("a"));
        let last = &toks[args[3].0..args[3].1];
        assert!(last.len() == 1 && last[0].is_number());
    }

    #[test]
    fn method_calls_are_marked_and_nested_fns_claim_their_tokens() {
        let (ws, g) = ws2("fn outer() { fn inner() { deep(); } x.poke(); }", "fn deep() {}");
        let outer = id_of(&ws, "outer");
        let inner = id_of(&ws, "inner");
        let deep = id_of(&ws, "deep");
        assert!(g.calls[inner].contains(&deep));
        assert!(!g.calls[outer].contains(&deep), "inner's calls must not leak to outer");
        let poke = g.sites.iter().find(|s| s.name == "poke").unwrap();
        assert!(poke.method);
        assert_eq!(poke.caller, outer);
    }
}
