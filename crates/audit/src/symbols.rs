//! The workspace symbol table: every parsed file, every named function,
//! and the struct fields whose declared type is a hash collection.
//!
//! Resolution is **name-approximate**: a call `foo(…)` or `.foo(…)`
//! resolves to *every* function named `foo` anywhere in the workspace,
//! with no type information. That over-approximation is the right
//! direction for the cross-file rules built on top — reachability
//! queries stay sound (“may reach” never misses a real path), at the
//! cost of occasionally connecting same-named strangers. `DESIGN.md` §16
//! spells out the caveats.

use std::collections::BTreeMap;

use crate::parser::{Item, ItemKind, ParsedFile};

/// A function identified by file index and item index.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct FnRef {
    /// Index into [`Workspace::files`].
    pub file: usize,
    /// Index into that file's `items`.
    pub item: usize,
}

/// All parsed files plus the cross-file name indexes.
#[derive(Clone, Debug, Default)]
pub struct Workspace {
    /// Parsed files, **sorted by path** (the determinism anchor: every
    /// id, index, and report order derives from this ordering).
    pub files: Vec<ParsedFile>,
    /// Function definitions by bare name.
    pub fns_by_name: BTreeMap<String, Vec<FnRef>>,
    /// Every function, in (file, item) order; the dense id space the call
    /// graph indexes by.
    pub all_fns: Vec<FnRef>,
    /// Struct fields anywhere in the workspace whose declared type
    /// mentions `HashMap`/`HashSet` (field name → true). Name-level, so a
    /// same-named field of a different struct aliases in — acceptable
    /// over-approximation for iteration-order analysis.
    pub hash_fields: BTreeMap<String, bool>,
}

impl Workspace {
    /// Builds the table from parsed files. `files` must already be sorted
    /// by path; the constructor asserts it (debug builds) rather than
    /// re-sorting, so callers stay conscious of the ordering contract.
    pub fn new(files: Vec<ParsedFile>) -> Self {
        debug_assert!(
            files.windows(2).all(|w| w[0].path <= w[1].path),
            "files must be path-sorted"
        );
        let mut ws = Workspace { files, ..Default::default() };
        for (fi, file) in ws.files.iter().enumerate() {
            for (ii, item) in file.items.iter().enumerate() {
                match item.kind {
                    ItemKind::Fn => {
                        let r = FnRef { file: fi, item: ii };
                        ws.all_fns.push(r);
                        ws.fns_by_name.entry(item.name.clone()).or_default().push(r);
                    }
                    ItemKind::Struct => {
                        collect_hash_fields(file, item, &mut ws.hash_fields);
                    }
                    _ => {}
                }
            }
        }
        ws
    }

    /// The item behind a [`FnRef`].
    pub fn item(&self, r: FnRef) -> &Item {
        &self.files[r.file].items[r.item]
    }

    /// The file behind a [`FnRef`].
    pub fn file(&self, r: FnRef) -> &ParsedFile {
        &self.files[r.file]
    }

    /// Dense id of a [`FnRef`] in [`Workspace::all_fns`] (binary search —
    /// `all_fns` is sorted by construction).
    pub fn fn_id(&self, r: FnRef) -> Option<usize> {
        self.all_fns.binary_search(&r).ok()
    }

    /// Whether a function is test code: marked/inherited `#[test]` /
    /// `#[cfg(test)]`, or defined in a file under a `tests/` directory.
    pub fn is_test_fn(&self, r: FnRef) -> bool {
        self.item(r).is_test || path_is_test(&self.file(r).path)
    }
}

/// Whether a workspace-relative path is test-tree source.
pub fn path_is_test(path: &str) -> bool {
    path.starts_with("tests/") || path.contains("/tests/")
}

/// Records field names with hash-collection types from a struct body:
/// inside the braces, `name : … HashMap/HashSet …` (up to the next `,` at
/// depth zero) marks `name`.
fn collect_hash_fields(file: &ParsedFile, item: &Item, out: &mut BTreeMap<String, bool>) {
    let Some((lo, hi)) = item.body else { return };
    let toks = &file.toks[lo..hi];
    let mut depth = 0isize;
    let mut field: Option<&str> = None;
    let mut i = 0usize;
    while i < toks.len() {
        match &toks[i].kind {
            crate::lexer::TokKind::Punct(c) => match c {
                '<' | '(' | '[' => depth += 1,
                '>' | ')' | ']' => depth -= 1,
                ',' if depth <= 0 => field = None,
                // `name :` at depth 0 — previous ident is the field; a
                // `::` path separator on either side disqualifies it.
                ':' if depth <= 0 && i > 0 => {
                    if let Some(name) = toks[i - 1].ident() {
                        let double = toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
                            || toks[i - 1].is_punct(':');
                        if !double {
                            field = Some(name);
                        }
                    }
                }
                _ => {}
            },
            crate::lexer::TokKind::Ident(s) if s == "HashMap" || s == "HashSet" => {
                if let Some(name) = field {
                    out.insert(name.to_string(), true);
                }
            }
            _ => {}
        }
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_source;

    #[test]
    fn fns_index_by_bare_name_across_files() {
        let a = parse_source("a.rs", "fn shared() {} fn only_a() {}");
        let b = parse_source("b.rs", "fn shared() {}");
        let ws = Workspace::new(vec![a, b]);
        assert_eq!(ws.fns_by_name["shared"].len(), 2);
        assert_eq!(ws.fns_by_name["only_a"].len(), 1);
        assert_eq!(ws.all_fns.len(), 3);
        for &r in &ws.all_fns {
            assert_eq!(ws.fn_id(r).map(|id| ws.all_fns[id]), Some(r));
        }
    }

    #[test]
    fn hash_typed_struct_fields_are_recorded() {
        let src = "struct S { counts: std::collections::HashMap<u32, f32>, name: String, tags: HashSet<u64> }";
        let ws = Workspace::new(vec![parse_source("a.rs", src)]);
        assert!(ws.hash_fields.contains_key("counts"));
        assert!(ws.hash_fields.contains_key("tags"));
        assert!(!ws.hash_fields.contains_key("name"));
    }

    #[test]
    fn tests_tree_paths_count_as_test_code() {
        assert!(path_is_test("tests/chaos.rs"));
        assert!(path_is_test("crates/mf/tests/proptests.rs"));
        assert!(!path_is_test("crates/mf/src/model.rs"));
    }
}
