//! `ca-audit` — the workspace determinism & query-discipline lint pass.
//!
//! Every crate in this workspace stakes its correctness on two contracts
//! that ordinary tests only check after the fact:
//!
//! 1. **Determinism** — bitwise-identical results at any `CA_THREADS`
//!    setting (the `ca-par` contract), golden-hash training parity, and
//!    resumable checkpoints. One stray `HashMap` iteration or
//!    `Instant::now` in a hot path silently breaks reproducibility — and
//!    with it the reward-signal fidelity CopyAttack's REINFORCE updates
//!    depend on.
//! 2. **Query discipline** — the black-box threat model assumes a strict
//!    query budget, so every ranking call must flow through the metered
//!    `BlackBoxRecommender`/`FallibleBlackBox` wrappers; a direct
//!    `.top_k(…)` in attack code is a soundness bug, not a style issue.
//!
//! The engine machine-checks both on every build, in two tiers. Token
//! rules run per file over a hand-rolled comment/string-aware tokenizer
//! ([`lexer`]). The **symbol-aware** tier parses every file to an item
//! skeleton ([`parser`]), assembles a workspace symbol table ([`symbols`])
//! and an approximate call graph ([`callgraph`]), and proves cross-file
//! properties no per-file scan can see: seed literals flowing through a
//! parameter into an RNG two crates away ([`rules::Rule::SeedDiscipline`]),
//! hash-iteration order leaking into float accumulators through a helper
//! ([`rules::Rule::IterationOrder`]), and raw ranking calls reachable from
//! attack code without crossing the metered surface
//! ([`rules::Rule::UnmeteredQuery`]).
//!
//! Per-file analysis fans out through `ca_par::map`, so the pass scales
//! with `CA_THREADS` while the report stays **byte-identical** at any
//! thread count (findings merge in fixed path order). The crate's only
//! dependency is the in-workspace `ca-par` runtime, so the auditor builds
//! even when the network does not.
//!
//! Suppression is layered (see `DESIGN.md` §16):
//!
//! - inline pragmas `// ca-audit: allow(<rule>) — <reason>` (reason
//!   mandatory) for single sites;
//! - a reviewed path-prefix allowlist ([`config`]) for whole trees;
//! - a checked-in ratchet baseline ([`baseline`], `audit.baseline`) for
//!   accepted debt that may only shrink.
//!
//! It ships three ways: the CLI (`cargo run -p ca-audit`, with
//! `--format human|json|github`, `--write-baseline`, `--self-check`),
//! the tier-1 gate at `tests/audit.rs`, and a CI job emitting GitHub
//! annotations.

#![forbid(unsafe_code)]

pub mod baseline;
pub mod callgraph;
pub mod config;
pub mod lexer;
pub mod parser;
pub mod report;
pub mod rules;
pub mod symbols;

pub use baseline::{Baseline, StaleEntry};
pub use config::{AllowEntry, AuditConfig};
pub use rules::{analyze_source, analyze_sources, Finding, Rule, Severity};

use std::io;
use std::path::{Path, PathBuf};

/// The top-level directories the pass scans, relative to the workspace
/// root. `vendor/` (offline dependency stand-ins) and `target/` are
/// deliberately outside the contract.
pub const SCAN_ROOTS: [&str; 4] = ["crates", "src", "tests", "examples"];

/// The full result of a workspace audit: surviving findings plus the
/// baseline bookkeeping the exit policy needs.
#[derive(Clone, Debug, Default)]
pub struct AuditOutcome {
    /// Findings not suppressed by pragma, allowlist, or baseline, in
    /// (path, line, rule) order.
    pub findings: Vec<Finding>,
    /// Number of findings the ratchet baseline absorbed.
    pub baselined: usize,
    /// Baseline entries whose debt has shrunk: the ledger must be
    /// regenerated (ratchet violation — fails the run like a Deny).
    pub stale: Vec<StaleEntry>,
}

impl AuditOutcome {
    /// Whether the run should fail: any Deny-severity finding or any
    /// stale baseline entry. Warn findings alone pass.
    pub fn failed(&self) -> bool {
        !self.stale.is_empty() || self.findings.iter().any(|f| f.severity() == Severity::Deny)
    }

    /// Whether anything at all was reported.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty() && self.stale.is_empty()
    }
}

/// Reads every auditable source file under `root`, as
/// `(workspace-relative path, contents)` in sorted path order — the order
/// every report derives from. `prefix` (workspace-relative, forward
/// slashes) restricts the walk; the CLI's `--self-check` passes
/// `crates/audit/` to audit the auditor alone.
pub fn collect_sources(
    root: &Path,
    cfg: &AuditConfig,
    prefix: Option<&str>,
) -> io::Result<Vec<(String, String)>> {
    let mut paths = Vec::new();
    for top in SCAN_ROOTS {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_rs(&dir, &mut paths)?;
        }
    }
    paths.sort();

    let mut files = Vec::new();
    for path in paths {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        if cfg.is_file_skipped(&rel) {
            continue;
        }
        if prefix.is_some_and(|p| !rel.starts_with(p)) {
            continue;
        }
        let src = std::fs::read_to_string(&path)?;
        files.push((rel, src));
    }
    Ok(files)
}

/// Audits the workspace at `root` under [`AuditConfig::workspace_default`],
/// with **no baseline** applied (the strict view of the tree).
pub fn audit_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    audit_workspace_with(root, &AuditConfig::workspace_default())
}

/// Audits the workspace at `root` under an explicit configuration, with
/// no baseline applied.
pub fn audit_workspace_with(root: &Path, cfg: &AuditConfig) -> io::Result<Vec<Finding>> {
    let files = collect_sources(root, cfg, None)?;
    let refs: Vec<(&str, &str)> = files.iter().map(|(p, s)| (p.as_str(), s.as_str())).collect();
    Ok(analyze_sources(&refs, cfg))
}

/// The full pipeline behind the CLI and the tier-1 gate: walk (optionally
/// restricted to `prefix`), analyze as one workspace, ratchet through
/// `baseline`.
pub fn audit_workspace_outcome(
    root: &Path,
    cfg: &AuditConfig,
    baseline: &Baseline,
    prefix: Option<&str>,
) -> io::Result<AuditOutcome> {
    let files = collect_sources(root, cfg, prefix)?;
    let refs: Vec<(&str, &str)> = files.iter().map(|(p, s)| (p.as_str(), s.as_str())).collect();
    let findings = analyze_sources(&refs, cfg);
    let (findings, baselined, stale) = baseline.apply(findings);
    Ok(AuditOutcome { findings, baselined, stale })
}

/// Recursively collects `.rs` files under `dir` (skipping `target/`).
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target" || n == ".git") {
                continue;
            }
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Walks upward from `start` to the nearest directory whose `Cargo.toml`
/// declares `[workspace]` (how the CLI finds the root when invoked from a
/// subdirectory).
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut cur = Some(start.to_path_buf());
    while let Some(dir) = cur {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        cur = dir.parent().map(Path::to_path_buf);
    }
    None
}
