//! `ca-audit` — the workspace determinism & query-discipline lint pass.
//!
//! Every crate in this workspace stakes its correctness on two contracts
//! that ordinary tests only check after the fact:
//!
//! 1. **Determinism** — bitwise-identical results at any `CA_THREADS`
//!    setting (the `ca-par` contract), golden-hash training parity, and
//!    resumable checkpoints. One stray `HashMap` iteration or
//!    `Instant::now` in a hot path silently breaks reproducibility — and
//!    with it the reward-signal fidelity CopyAttack's REINFORCE updates
//!    depend on.
//! 2. **Query discipline** — the black-box threat model assumes a strict
//!    query budget, so every ranking call must flow through the metered
//!    `BlackBoxRecommender`/`FallibleBlackBox` wrappers; a direct
//!    `.top_k(…)` in attack code is a soundness bug, not a style issue.
//!
//! This crate machine-checks both on every build: a hand-rolled
//! comment/string-aware tokenizer ([`lexer`]), a rule engine over the token
//! stream ([`rules`]), a reviewed allowlist ([`config`]), and human/JSON
//! reporters ([`report`]). It ships three ways:
//!
//! - `cargo run -p ca-audit [-- --format json]` — the CLI;
//! - `tests/audit.rs` at the workspace root — the tier-1 gate asserting
//!   zero findings;
//! - a CI job running the JSON reporter.
//!
//! Single sites are suppressed inline with
//! `// ca-audit: allow(<rule>) — <reason>`; the reason is mandatory
//! (a reasonless pragma suppresses nothing and is itself a finding).
//! The crate is dependency-free so the auditor builds even when the rest
//! of the workspace does not.

#![forbid(unsafe_code)]

pub mod config;
pub mod lexer;
pub mod report;
pub mod rules;

pub use config::{AllowEntry, AuditConfig};
pub use rules::{analyze_source, Finding, Rule};

use std::io;
use std::path::{Path, PathBuf};

/// The top-level directories the pass scans, relative to the workspace
/// root. `vendor/` (offline dependency stand-ins) and `target/` are
/// deliberately outside the contract.
pub const SCAN_ROOTS: [&str; 4] = ["crates", "src", "tests", "examples"];

/// Audits the workspace at `root` under [`AuditConfig::workspace_default`].
pub fn audit_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    audit_workspace_with(root, &AuditConfig::workspace_default())
}

/// Audits the workspace at `root` under an explicit configuration.
///
/// Files are visited in sorted path order, so the finding list (and the
/// JSON report derived from it) is itself deterministic.
pub fn audit_workspace_with(root: &Path, cfg: &AuditConfig) -> io::Result<Vec<Finding>> {
    let mut files = Vec::new();
    for top in SCAN_ROOTS {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_rs(&dir, &mut files)?;
        }
    }
    files.sort();

    let mut findings = Vec::new();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        if cfg.is_file_skipped(&rel) {
            continue;
        }
        let src = std::fs::read_to_string(&path)?;
        findings.extend(analyze_source(&rel, &src, cfg));
    }
    Ok(findings)
}

/// Recursively collects `.rs` files under `dir` (skipping `target/`).
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target" || n == ".git") {
                continue;
            }
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Walks upward from `start` to the nearest directory whose `Cargo.toml`
/// declares `[workspace]` (how the CLI finds the root when invoked from a
/// subdirectory).
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut cur = Some(start.to_path_buf());
    while let Some(dir) = cur {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        cur = dir.parent().map(Path::to_path_buf);
    }
    None
}
