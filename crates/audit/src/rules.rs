//! The audit rules and the per-file analysis pass.
//!
//! Each rule is a named, individually-suppressible invariant of this
//! workspace (see `DESIGN.md` §11 for the policy behind each one). Rules
//! match on the token stream produced by [`crate::lexer`], so nothing in a
//! comment or string literal can fire, and every finding carries the rule
//! id, the 1-based line, and a fix hint.
//!
//! Suppression: `// ca-audit: allow(<rule>) — <reason>` on the same line as
//! the violation or the line directly above it silences that rule there.
//! The reason is mandatory — a reasonless pragma suppresses nothing and is
//! itself a finding ([`Rule::PragmaMissingReason`]). File-scope rules
//! ([`Rule::UnsafeAudit`]) accept the pragma anywhere in the file.

use crate::config::AuditConfig;
use crate::lexer::{lex, Comment, Tok};

/// The invariants the pass enforces.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Rule {
    /// `HashMap`/`HashSet` in library code: iteration order is
    /// nondeterministic, which breaks the bitwise-reproducibility contract
    /// the moment anyone iterates one.
    HashCollections,
    /// `Instant::now` / `SystemTime::now` in a determinism-contract path.
    WallClock,
    /// `thread_rng` / `from_entropy`: ambient OS-seeded randomness outside
    /// the seeded-`StdRng` discipline.
    AdHocRng,
    /// Raw `std::thread::spawn`/`scope` outside `ca-par`: threading that
    /// the `CA_THREADS` knob does not govern.
    RawThread,
    /// Direct `.top_k(` / `.top_k_batch(` in `copyattack-core`: a ranking
    /// query that bypasses the metered/retry `try_top_k*` wrappers and
    /// therefore the query budget of the black-box threat model.
    RawTopK,
    /// Direct `.inject_user(` / `.try_inject_user(` / `.append_profile(`
    /// in attack code (`copyattack-core` outside `env.rs`): a profile
    /// reaching the platform without passing through the
    /// `AttackEnvironment` injection surface, and therefore outside the
    /// budget/metering the threat model charges attacks against.
    EnvInjection,
    /// A library crate whose `lib.rs` does not carry
    /// `#![forbid(unsafe_code)]` (or a justification pragma).
    UnsafeAudit,
    /// `.sum()`/`.fold(` over values produced by a `par::map*` call in the
    /// same statement: float reduction whose rounding schedule is not
    /// pinned by the blessed `ca_par::map_reduce` combiner.
    UnorderedReduce,
    /// `thread::sleep` inside the service-path crates (`ca-serve`,
    /// `ca-recsys`): those layers run on logical clocks only, and a
    /// real-time block there both stalls the deterministic event loop and
    /// smuggles wall-clock timing into the replay contract.
    ServiceSleep,
    /// `Vec<Vec<` in the data-plane crates (`ca-recsys`, `ca-datagen`):
    /// the compact CSR arena layout must not silently regress to
    /// pointer-chasing nested allocations on the paths that carry
    /// dataset-scale state.
    NestedVec,
    /// Direct `.score_batch(` call outside the shared retrieval path
    /// (`recsys::engine` and `ca-ann`): a full-catalog scan that bypasses
    /// the Top-k entry points, and with them the IVF sublinear path and
    /// the scratch-buffer reuse discipline.
    ExactScan,
    /// A `ca-audit: allow` pragma with no reason after the rule list.
    PragmaMissingReason,
    /// A `ca-audit` pragma naming a rule id that does not exist (typos
    /// would otherwise silently suppress nothing).
    PragmaUnknownRule,
}

impl Rule {
    /// Every rule, in reporting order.
    pub const ALL: [Rule; 13] = [
        Rule::HashCollections,
        Rule::WallClock,
        Rule::AdHocRng,
        Rule::RawThread,
        Rule::RawTopK,
        Rule::EnvInjection,
        Rule::UnsafeAudit,
        Rule::UnorderedReduce,
        Rule::ServiceSleep,
        Rule::NestedVec,
        Rule::ExactScan,
        Rule::PragmaMissingReason,
        Rule::PragmaUnknownRule,
    ];

    /// Stable kebab-case id (used in pragmas, JSON output, and allowlists).
    pub fn id(&self) -> &'static str {
        match self {
            Rule::HashCollections => "hash-collections",
            Rule::WallClock => "wall-clock",
            Rule::AdHocRng => "ad-hoc-rng",
            Rule::RawThread => "raw-thread",
            Rule::RawTopK => "raw-top-k",
            Rule::EnvInjection => "env-injection",
            Rule::UnsafeAudit => "unsafe-audit",
            Rule::UnorderedReduce => "unordered-reduce",
            Rule::ServiceSleep => "service-sleep",
            Rule::NestedVec => "nested-vec",
            Rule::ExactScan => "exact-scan",
            Rule::PragmaMissingReason => "pragma-missing-reason",
            Rule::PragmaUnknownRule => "pragma-unknown-rule",
        }
    }

    /// Inverse of [`Rule::id`].
    pub fn from_id(id: &str) -> Option<Rule> {
        Rule::ALL.into_iter().find(|r| r.id() == id)
    }

    /// One-line statement of the violation.
    pub fn message(&self) -> &'static str {
        match self {
            Rule::HashCollections => {
                "HashMap/HashSet in library code: iteration order is nondeterministic"
            }
            Rule::WallClock => "wall-clock read (Instant::now/SystemTime::now) in library code",
            Rule::AdHocRng => "ambient RNG (thread_rng/from_entropy) outside the seeded discipline",
            Rule::RawThread => "raw std::thread spawn/scope outside the ca-par runtime",
            Rule::RawTopK => "direct .top_k/.top_k_batch call bypasses the metered query path",
            Rule::EnvInjection => {
                "direct profile injection bypasses the AttackEnvironment budget surface"
            }
            Rule::UnsafeAudit => "library crate does not carry #![forbid(unsafe_code)]",
            Rule::UnorderedReduce => {
                "float reduction over par-produced values outside ca_par::map_reduce"
            }
            Rule::ServiceSleep => "thread::sleep in a logical-clock service path",
            Rule::NestedVec => "nested Vec<Vec<…>> in a compact-data-plane crate",
            Rule::ExactScan => {
                "direct .score_batch call scans the full catalog outside the retrieval path"
            }
            Rule::PragmaMissingReason => "ca-audit allow pragma without a reason",
            Rule::PragmaUnknownRule => "ca-audit pragma names an unknown rule",
        }
    }

    /// How to fix (or soundly suppress) the finding.
    pub fn hint(&self) -> &'static str {
        match self {
            Rule::HashCollections => {
                "use BTreeMap/BTreeSet or a dense Vec index; if the collection is provably \
                 never iterated, suppress with a reasoned pragma"
            }
            Rule::WallClock => {
                "derive timing from logical clocks; keep wall-clock strictly telemetry-only \
                 and suppress with a reason"
            }
            Rule::AdHocRng => "thread a seeded StdRng (or derive one via ca_par::split_seed)",
            Rule::RawThread => {
                "route through ca_par::{map, map_min, map_mut, map_reduce} so the CA_THREADS \
                 knob governs every parallel stage"
            }
            Rule::RawTopK => {
                "query through FallibleBlackBox::try_top_k/try_top_k_batch (with a \
                 RetryPolicy) so every ranking call is metered against the query budget"
            }
            Rule::EnvInjection => {
                "inject through AttackEnvironment::inject/try_inject so every crafted \
                 profile is charged against the campaign budget; platform-side test fakes \
                 forwarding to their inner recommender may suppress with a reason"
            }
            Rule::UnsafeAudit => {
                "add #![forbid(unsafe_code)] to the crate root, or suppress with a pragma \
                 stating why unsafe is required"
            }
            Rule::UnorderedReduce => {
                "reduce through ca_par::map_reduce: its fixed chunk grid and serial \
                 ascending combine pin the float rounding schedule at any thread count"
            }
            Rule::ServiceSleep => {
                "model every delay as logical ticks (FallibleBlackBox::wait, the ServeConfig \
                 cadences); the service layer must never block real time"
            }
            Rule::NestedVec => {
                "store dataset-scale state in flat CSR arenas (one buffer + offsets, see \
                 recsys::Dataset) or ca_tensor::Matrix; per-query k-sized batch results \
                 may keep the nested shape behind a reasoned pragma"
            }
            Rule::ExactScan => {
                "rank through the engine entry points (single_top_k/batch_top_k/\
                 auto_batch_top_k or ca_ann::IvfIndex) so callers inherit the sublinear \
                 path; parity tests pinning the dense kernel may suppress with a reason"
            }
            Rule::PragmaMissingReason => "append `— <why this is sound>` after the rule list",
            Rule::PragmaUnknownRule => {
                "valid rules: hash-collections, wall-clock, ad-hoc-rng, raw-thread, \
                 raw-top-k, env-injection, unsafe-audit, unordered-reduce, service-sleep, \
                 nested-vec, exact-scan"
            }
        }
    }
}

impl std::fmt::Display for Rule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.id())
    }
}

/// One violation: where, which rule, and what to do about it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path (forward slashes).
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// The rule that fired.
    pub rule: Rule,
    /// [`Rule::message`], owned so reporters need no lookups.
    pub message: String,
}

impl Finding {
    fn new(file: &str, line: u32, rule: Rule) -> Self {
        Finding { file: file.to_string(), line, rule, message: rule.message().to_string() }
    }
}

/// A parsed `ca-audit:` pragma comment.
#[derive(Clone, Debug)]
struct Pragma {
    line: u32,
    rules: Vec<Rule>,
    unknown: Vec<String>,
    has_reason: bool,
}

/// Parses `// ca-audit: allow(rule, …) — reason` out of the comments.
fn parse_pragmas(comments: &[Comment]) -> Vec<Pragma> {
    let mut pragmas = Vec::new();
    for c in comments {
        // Doc comments arrive as `/ text` or `! text`; strip the marker.
        let t = c.text.trim_start_matches(['/', '!']).trim();
        let Some(rest) = t.strip_prefix("ca-audit:") else { continue };
        let rest = rest.trim_start();
        let mut pragma =
            Pragma { line: c.line, rules: Vec::new(), unknown: Vec::new(), has_reason: false };
        let body = rest.strip_prefix("allow").map(str::trim_start);
        match body.and_then(|b| b.strip_prefix('(')).and_then(|b| b.split_once(')')) {
            Some((list, tail)) => {
                for name in list.split(',') {
                    let name = name.trim();
                    if name.is_empty() {
                        continue;
                    }
                    match Rule::from_id(name) {
                        Some(r) => pragma.rules.push(r),
                        None => pragma.unknown.push(name.to_string()),
                    }
                }
                // The reason is whatever survives after the separator dash
                // (or any punctuation run) following the rule list.
                let reason = tail.trim_start_matches([' ', '\t', '-', '—', '–', ':', '.', ',']);
                pragma.has_reason = !reason.trim().is_empty();
            }
            None => pragma.unknown.push(rest.to_string()),
        }
        pragmas.push(pragma);
    }
    pragmas
}

/// Whether tokens starting at `i` spell the path segment `a::b`.
fn path2(toks: &[Tok], i: usize, a: &[&str], b: &[&str]) -> bool {
    i + 3 < toks.len()
        && a.iter().any(|s| toks[i].is_ident(s))
        && toks[i + 1].is_punct(':')
        && toks[i + 2].is_punct(':')
        && b.iter().any(|s| toks[i + 3].is_ident(s))
}

/// Whether the token stream contains `#![forbid(unsafe_code)]`.
fn has_forbid_unsafe(toks: &[Tok]) -> bool {
    toks.windows(8).any(|w| {
        w[0].is_punct('#')
            && w[1].is_punct('!')
            && w[2].is_punct('[')
            && w[3].is_ident("forbid")
            && w[4].is_punct('(')
            && w[5].is_ident("unsafe_code")
            && w[6].is_punct(')')
            && w[7].is_punct(']')
    })
}

/// Whether `rel_path` is the root module of a library crate (where the
/// unsafe-audit rule applies).
fn is_lib_root(rel_path: &str) -> bool {
    rel_path == "src/lib.rs"
        || (rel_path.starts_with("crates/") && rel_path.ends_with("/src/lib.rs"))
}

/// Runs every applicable rule over one file.
///
/// `rel_path` is the workspace-relative path (forward slashes); it scopes
/// path-dependent rules ([`Rule::RawTopK`], [`Rule::UnsafeAudit`],
/// [`Rule::ServiceSleep`]) and is matched against the allowlist in `cfg`.
pub fn analyze_source(rel_path: &str, src: &str, cfg: &AuditConfig) -> Vec<Finding> {
    let (toks, comments) = lex(src);
    let pragmas = parse_pragmas(&comments);
    let mut findings = Vec::new();

    // Pragma hygiene first: unknown rules and missing reasons are findings
    // in their own right (and a reasonless pragma suppresses nothing).
    for p in &pragmas {
        for _ in &p.unknown {
            findings.push(Finding::new(rel_path, p.line, Rule::PragmaUnknownRule));
        }
        if !p.unknown.is_empty() || !p.rules.is_empty() {
            if !p.has_reason {
                findings.push(Finding::new(rel_path, p.line, Rule::PragmaMissingReason));
            }
        } else {
            // `ca-audit: allow()` with an empty list: malformed.
            findings.push(Finding::new(rel_path, p.line, Rule::PragmaUnknownRule));
        }
    }

    let in_core = rel_path.starts_with("crates/copyattack-core/src/");
    // env.rs *is* the injection surface — its platform calls are the
    // implementation of the budgeted path, not a bypass of it.
    let in_attack_code = in_core && rel_path != "crates/copyattack-core/src/env.rs";
    let in_service =
        rel_path.starts_with("crates/serve/src/") || rel_path.starts_with("crates/recsys/src/");
    let in_dataplane =
        rel_path.starts_with("crates/recsys/src/") || rel_path.starts_with("crates/datagen/src/");
    // The engine module and the ANN crate *are* the retrieval path; a
    // `.score_batch(` there is the implementation, not a bypass.
    let in_retrieval_path =
        rel_path == "crates/recsys/src/engine.rs" || rel_path.starts_with("crates/ann/src/");

    // Statement window for the unordered-reduce rule: a statement runs
    // between `;`/`{`/`}` boundaries; within one, a float reduction chained
    // after a `par::map*` call is flagged.
    let mut window_has_par_map = false;

    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        match &t.kind {
            crate::lexer::TokKind::Punct(c) => {
                if matches!(c, ';' | '{' | '}') {
                    window_has_par_map = false;
                }
                // `.top_k(` / `.top_k_batch(`.
                if in_core
                    && *c == '.'
                    && i + 2 < toks.len()
                    && (toks[i + 1].is_ident("top_k") || toks[i + 1].is_ident("top_k_batch"))
                    && toks[i + 2].is_punct('(')
                {
                    findings.push(Finding::new(rel_path, toks[i + 1].line, Rule::RawTopK));
                }
                // `.inject_user(` / `.try_inject_user(` / `.append_profile(`
                // — a profile reaching the platform around the environment.
                if in_attack_code
                    && *c == '.'
                    && i + 2 < toks.len()
                    && (toks[i + 1].is_ident("inject_user")
                        || toks[i + 1].is_ident("try_inject_user")
                        || toks[i + 1].is_ident("append_profile"))
                    && toks[i + 2].is_punct('(')
                {
                    findings.push(Finding::new(rel_path, toks[i + 1].line, Rule::EnvInjection));
                }
                // `.score_batch(` — a full-catalog scan off the shared
                // retrieval path. Definitions (`fn score_batch(`) have no
                // leading dot and do not match.
                if !in_retrieval_path
                    && *c == '.'
                    && i + 2 < toks.len()
                    && toks[i + 1].is_ident("score_batch")
                    && toks[i + 2].is_punct('(')
                {
                    findings.push(Finding::new(rel_path, toks[i + 1].line, Rule::ExactScan));
                }
                // `.sum…` / `.fold(` after a par-map in the same statement.
                if *c == '.'
                    && window_has_par_map
                    && i + 1 < toks.len()
                    && (toks[i + 1].is_ident("sum") || toks[i + 1].is_ident("fold"))
                {
                    findings.push(Finding::new(rel_path, toks[i + 1].line, Rule::UnorderedReduce));
                }
            }
            crate::lexer::TokKind::Ident(name) => match name.as_str() {
                "HashMap" | "HashSet" => {
                    findings.push(Finding::new(rel_path, t.line, Rule::HashCollections));
                }
                "thread_rng" | "from_entropy" => {
                    findings.push(Finding::new(rel_path, t.line, Rule::AdHocRng));
                }
                "Instant" | "SystemTime" if path2(&toks, i, &[name], &["now"]) => {
                    findings.push(Finding::new(rel_path, t.line, Rule::WallClock));
                }
                "thread" if path2(&toks, i, &["thread"], &["spawn", "scope"]) => {
                    findings.push(Finding::new(rel_path, t.line, Rule::RawThread));
                }
                "thread" if in_service && path2(&toks, i, &["thread"], &["sleep"]) => {
                    findings.push(Finding::new(rel_path, t.line, Rule::ServiceSleep));
                }
                "par" | "ca_par" if path2(&toks, i, &[name], &["map", "map_min", "map_mut"]) => {
                    window_has_par_map = true;
                }
                // `Vec < Vec <` — a nested dataset-scale allocation.
                "Vec"
                    if in_dataplane
                        && i + 3 < toks.len()
                        && toks[i + 1].is_punct('<')
                        && toks[i + 2].is_ident("Vec")
                        && toks[i + 3].is_punct('<') =>
                {
                    findings.push(Finding::new(rel_path, t.line, Rule::NestedVec));
                }
                _ => {}
            },
        }
        i += 1;
    }

    if is_lib_root(rel_path) && !has_forbid_unsafe(&toks) {
        findings.push(Finding::new(rel_path, 1, Rule::UnsafeAudit));
    }

    // Apply suppressions: a *reasoned* pragma naming the rule, on the
    // finding's line or the line directly above (file-wide for file-scope
    // rules). Pragma-hygiene findings are never suppressible.
    findings.retain(|f| match f.rule {
        Rule::PragmaMissingReason | Rule::PragmaUnknownRule => true,
        Rule::UnsafeAudit => {
            !pragmas.iter().any(|p| p.has_reason && p.rules.contains(&Rule::UnsafeAudit))
        }
        rule => !pragmas.iter().any(|p| {
            p.has_reason && p.rules.contains(&rule) && (p.line == f.line || p.line + 1 == f.line)
        }),
    });

    // Apply the allowlist last so pragma hygiene still holds everywhere.
    findings.retain(|f| !cfg.is_allowed(rel_path, f.rule));
    findings
}
