//! The audit rules and the analysis passes (per-file and cross-file).
//!
//! Each rule is a named, individually-suppressible invariant of this
//! workspace (see `DESIGN.md` §11/§16 for the policy behind each one).
//! Token-level rules match the [`crate::lexer`] stream, so nothing in a
//! comment or string literal can fire. The three symbol-aware families
//! ([`Rule::SeedDiscipline`], [`Rule::IterationOrder`],
//! [`Rule::UnmeteredQuery`]) additionally consult the item skeleton
//! ([`crate::parser`]), the workspace symbol table ([`crate::symbols`]),
//! and the approximate call graph ([`crate::callgraph`]) — they can see a
//! literal seed passed across a crate boundary or a ranking call that no
//! metered wrapper guards.
//!
//! Suppression: `// ca-audit: allow(<rule>) — <reason>` on the same line as
//! the violation or the line directly above it silences that rule there.
//! The reason is mandatory — a reasonless pragma suppresses nothing and is
//! itself a finding ([`Rule::PragmaMissingReason`]). File-scope rules
//! ([`Rule::UnsafeAudit`]) accept the pragma anywhere in the file.

use crate::callgraph::{call_args, CallGraph};
use crate::config::AuditConfig;
use crate::lexer::{lex, Comment, Tok, TokKind};
use crate::parser::{parse, ParsedFile};
use crate::symbols::{FnRef, Workspace};

/// How a finding gates the build.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Reported (and annotated in CI) but does not fail the run.
    Warn,
    /// Fails the run unless suppressed by pragma, allowlist, or baseline.
    Deny,
}

impl Severity {
    /// Stable lowercase name (JSON / github output).
    pub fn id(&self) -> &'static str {
        match self {
            Severity::Warn => "warn",
            Severity::Deny => "deny",
        }
    }
}

/// The invariants the pass enforces.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Rule {
    /// `HashMap`/`HashSet` in library code: iteration order is
    /// nondeterministic, which breaks the bitwise-reproducibility contract
    /// the moment anyone iterates one.
    HashCollections,
    /// `Instant::now` / `SystemTime::now` in a determinism-contract path.
    WallClock,
    /// `thread_rng` / `from_entropy`: ambient OS-seeded randomness outside
    /// the seeded-`StdRng` discipline.
    AdHocRng,
    /// Raw `std::thread::spawn`/`scope` outside `ca-par`: threading that
    /// the `CA_THREADS` knob does not govern.
    RawThread,
    /// Direct `.inject_user(` / `.try_inject_user(` / `.append_profile(`
    /// in attack code (`copyattack-core` outside `env.rs`): a profile
    /// reaching the platform without passing through the
    /// `AttackEnvironment` injection surface, and therefore outside the
    /// budget/metering the threat model charges attacks against.
    EnvInjection,
    /// A library crate whose `lib.rs` does not carry
    /// `#![forbid(unsafe_code)]` (or a justification pragma).
    UnsafeAudit,
    /// `.sum()`/`.fold(` over values produced by a `par::map*` call in the
    /// same statement: float reduction whose rounding schedule is not
    /// pinned by the blessed `ca_par::map_reduce` combiner.
    UnorderedReduce,
    /// `thread::sleep` inside the service-path crates (`ca-serve`,
    /// `ca-recsys`): those layers run on logical clocks only, and a
    /// real-time block there both stalls the deterministic event loop and
    /// smuggles wall-clock timing into the replay contract.
    ServiceSleep,
    /// `Vec<Vec<` in the data-plane crates (`ca-recsys`, `ca-datagen`):
    /// the compact CSR arena layout must not silently regress to
    /// pointer-chasing nested allocations on the paths that carry
    /// dataset-scale state.
    NestedVec,
    /// Direct `.score_batch(` call outside the shared retrieval path
    /// (`recsys::engine` and `ca-ann`): a full-catalog scan that bypasses
    /// the Top-k entry points, and with them the IVF sublinear path and
    /// the scratch-buffer reuse discipline.
    ExactScan,
    /// An RNG constructed from a seed that does not derive from the
    /// `split_seed`/config-seed discipline: a literal (`seed_from_u64(42)`)
    /// in non-test code, directly or passed through a seed parameter from
    /// a non-test caller anywhere in the workspace (call-graph checked).
    SeedDiscipline,
    /// `HashMap`/`HashSet` *iteration* whose results flow into a
    /// determinism-sensitive sink — float accumulation (`sum`/`fold`),
    /// ordered collection (`collect` into `Vec`), or hashing — directly or
    /// one call away through a function that returns hash-iteration
    /// results (call-graph checked).
    IterationOrder,
    /// A raw `.top_k(`/`.top_k_batch(` ranking call in a function the
    /// attack side can reach without crossing the metered surface
    /// (`MeteredRecommender`/`FaultyRecommender`/recommender-trait impls/
    /// engine internals): it spends platform queries the black-box budget
    /// never sees (call-graph reachability checked).
    UnmeteredQuery,
    /// A `ca-audit: allow` pragma with no reason after the rule list.
    PragmaMissingReason,
    /// A `ca-audit` pragma naming a rule id that does not exist (typos
    /// would otherwise silently suppress nothing).
    PragmaUnknownRule,
}

impl Rule {
    /// Every rule, in reporting order.
    pub const ALL: [Rule; 15] = [
        Rule::HashCollections,
        Rule::WallClock,
        Rule::AdHocRng,
        Rule::RawThread,
        Rule::EnvInjection,
        Rule::UnsafeAudit,
        Rule::UnorderedReduce,
        Rule::ServiceSleep,
        Rule::NestedVec,
        Rule::ExactScan,
        Rule::SeedDiscipline,
        Rule::IterationOrder,
        Rule::UnmeteredQuery,
        Rule::PragmaMissingReason,
        Rule::PragmaUnknownRule,
    ];

    /// Stable kebab-case id (used in pragmas, JSON output, allowlists, and
    /// the ratchet baseline).
    pub fn id(&self) -> &'static str {
        match self {
            Rule::HashCollections => "hash-collections",
            Rule::WallClock => "wall-clock",
            Rule::AdHocRng => "ad-hoc-rng",
            Rule::RawThread => "raw-thread",
            Rule::EnvInjection => "env-injection",
            Rule::UnsafeAudit => "unsafe-audit",
            Rule::UnorderedReduce => "unordered-reduce",
            Rule::ServiceSleep => "service-sleep",
            Rule::NestedVec => "nested-vec",
            Rule::ExactScan => "exact-scan",
            Rule::SeedDiscipline => "seed-discipline",
            Rule::IterationOrder => "iteration-order",
            Rule::UnmeteredQuery => "unmetered-query",
            Rule::PragmaMissingReason => "pragma-missing-reason",
            Rule::PragmaUnknownRule => "pragma-unknown-rule",
        }
    }

    /// Inverse of [`Rule::id`].
    pub fn from_id(id: &str) -> Option<Rule> {
        Rule::ALL.into_iter().find(|r| r.id() == id)
    }

    /// Default gating severity. `iteration-order` is the one taint-based
    /// heuristic family, so it warns; everything else denies (the
    /// baseline-ratchet policy in `DESIGN.md` §16 is how a new rule climbs
    /// from Warn to Deny without blocking the tree).
    pub fn severity(&self) -> Severity {
        match self {
            Rule::IterationOrder => Severity::Warn,
            _ => Severity::Deny,
        }
    }

    /// One-line statement of the violation.
    pub fn message(&self) -> &'static str {
        match self {
            Rule::HashCollections => {
                "HashMap/HashSet in library code: iteration order is nondeterministic"
            }
            Rule::WallClock => "wall-clock read (Instant::now/SystemTime::now) in library code",
            Rule::AdHocRng => "ambient RNG (thread_rng/from_entropy) outside the seeded discipline",
            Rule::RawThread => "raw std::thread spawn/scope outside the ca-par runtime",
            Rule::EnvInjection => {
                "direct profile injection bypasses the AttackEnvironment budget surface"
            }
            Rule::UnsafeAudit => "library crate does not carry #![forbid(unsafe_code)]",
            Rule::UnorderedReduce => {
                "float reduction over par-produced values outside ca_par::map_reduce"
            }
            Rule::ServiceSleep => "thread::sleep in a logical-clock service path",
            Rule::NestedVec => "nested Vec<Vec<…>> in a compact-data-plane crate",
            Rule::ExactScan => {
                "direct .score_batch call scans the full catalog outside the retrieval path"
            }
            Rule::SeedDiscipline => {
                "RNG seeded outside the split_seed/config-seed discipline (literal seed in \
                 non-test code)"
            }
            Rule::IterationOrder => {
                "hash-collection iteration flows into an order-sensitive sink (float \
                 accumulation, Vec collection, or hashing)"
            }
            Rule::UnmeteredQuery => {
                "raw .top_k/.top_k_batch reachable from attack code without crossing the \
                 metered query surface"
            }
            Rule::PragmaMissingReason => "ca-audit allow pragma without a reason",
            Rule::PragmaUnknownRule => "ca-audit pragma names an unknown rule",
        }
    }

    /// How to fix (or soundly suppress) the finding.
    pub fn hint(&self) -> &'static str {
        match self {
            Rule::HashCollections => {
                "use BTreeMap/BTreeSet or a dense Vec index; if the collection is provably \
                 never iterated, suppress with a reasoned pragma"
            }
            Rule::WallClock => {
                "derive timing from logical clocks; keep wall-clock strictly telemetry-only \
                 and suppress with a reason"
            }
            Rule::AdHocRng => "thread a seeded StdRng (or derive one via ca_par::split_seed)",
            Rule::RawThread => {
                "route through ca_par::{map, map_min, map_mut, map_reduce} so the CA_THREADS \
                 knob governs every parallel stage"
            }
            Rule::EnvInjection => {
                "inject through AttackEnvironment::inject/try_inject so every crafted \
                 profile is charged against the campaign budget; platform-side test fakes \
                 forwarding to their inner recommender may suppress with a reason"
            }
            Rule::UnsafeAudit => {
                "add #![forbid(unsafe_code)] to the crate root, or suppress with a pragma \
                 stating why unsafe is required"
            }
            Rule::UnorderedReduce => {
                "reduce through ca_par::map_reduce: its fixed chunk grid and serial \
                 ascending combine pin the float rounding schedule at any thread count"
            }
            Rule::ServiceSleep => {
                "model every delay as logical ticks (FallibleBlackBox::wait, the ServeConfig \
                 cadences); the service layer must never block real time"
            }
            Rule::NestedVec => {
                "store dataset-scale state in flat CSR arenas (one buffer + offsets, see \
                 recsys::Dataset) or ca_tensor::Matrix; per-query k-sized batch results \
                 may keep the nested shape behind a reasoned pragma"
            }
            Rule::ExactScan => {
                "rank through the engine entry points (single_top_k/batch_top_k/\
                 auto_batch_top_k or ca_ann::IvfIndex) so callers inherit the sublinear \
                 path; parity tests pinning the dense kernel may suppress with a reason"
            }
            Rule::SeedDiscipline => {
                "derive the seed from the run's root seed via ca_par::split_seed (or a \
                 config seed field); literal seeds belong only in tests and root configs"
            }
            Rule::IterationOrder => {
                "iterate a BTreeMap/BTreeSet (or sort the keys first); hash iteration \
                 order changes per process and per insertion history"
            }
            Rule::UnmeteredQuery => {
                "query through FallibleBlackBox::try_top_k/try_top_k_batch (with a \
                 RetryPolicy) so every ranking call is metered against the query budget; \
                 platform internals implement the surface and are exempt automatically"
            }
            Rule::PragmaMissingReason => "append `— <why this is sound>` after the rule list",
            Rule::PragmaUnknownRule => {
                "valid rules: hash-collections, wall-clock, ad-hoc-rng, raw-thread, \
                 env-injection, unsafe-audit, unordered-reduce, service-sleep, nested-vec, \
                 exact-scan, seed-discipline, iteration-order, unmetered-query"
            }
        }
    }
}

impl std::fmt::Display for Rule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.id())
    }
}

/// One violation: where, which rule, and what to do about it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path (forward slashes).
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// The rule that fired.
    pub rule: Rule,
    /// [`Rule::message`], owned so reporters need no lookups.
    pub message: String,
}

impl Finding {
    fn new(file: &str, line: u32, rule: Rule) -> Self {
        Finding { file: file.to_string(), line, rule, message: rule.message().to_string() }
    }

    /// The finding's gating severity (delegates to the rule).
    pub fn severity(&self) -> Severity {
        self.rule.severity()
    }
}

/// A parsed `ca-audit:` pragma comment.
#[derive(Clone, Debug)]
struct Pragma {
    line: u32,
    rules: Vec<Rule>,
    unknown: Vec<String>,
    has_reason: bool,
}

/// Parses `// ca-audit: allow(rule, …) — reason` out of the comments.
fn parse_pragmas(comments: &[Comment]) -> Vec<Pragma> {
    let mut pragmas = Vec::new();
    for c in comments {
        // Doc comments arrive as `/ text` or `! text`; strip the marker.
        let t = c.text.trim_start_matches(['/', '!']).trim();
        let Some(rest) = t.strip_prefix("ca-audit:") else { continue };
        let rest = rest.trim_start();
        let mut pragma =
            Pragma { line: c.line, rules: Vec::new(), unknown: Vec::new(), has_reason: false };
        let body = rest.strip_prefix("allow").map(str::trim_start);
        match body.and_then(|b| b.strip_prefix('(')).and_then(|b| b.split_once(')')) {
            Some((list, tail)) => {
                for name in list.split(',') {
                    let name = name.trim();
                    if name.is_empty() {
                        continue;
                    }
                    match Rule::from_id(name) {
                        Some(r) => pragma.rules.push(r),
                        None => pragma.unknown.push(name.to_string()),
                    }
                }
                // The reason is whatever survives after the separator dash
                // (or any punctuation run) following the rule list.
                let reason = tail.trim_start_matches([' ', '\t', '-', '—', '–', ':', '.', ',']);
                pragma.has_reason = !reason.trim().is_empty();
            }
            None => pragma.unknown.push(rest.to_string()),
        }
        pragmas.push(pragma);
    }
    pragmas
}

/// Whether tokens starting at `i` spell the path segment `a::b`.
fn path2(toks: &[Tok], i: usize, a: &[&str], b: &[&str]) -> bool {
    i + 3 < toks.len()
        && a.iter().any(|s| toks[i].is_ident(s))
        && toks[i + 1].is_punct(':')
        && toks[i + 2].is_punct(':')
        && b.iter().any(|s| toks[i + 3].is_ident(s))
}

/// Whether the token stream contains `#![forbid(unsafe_code)]`.
fn has_forbid_unsafe(toks: &[Tok]) -> bool {
    toks.windows(8).any(|w| {
        w[0].is_punct('#')
            && w[1].is_punct('!')
            && w[2].is_punct('[')
            && w[3].is_ident("forbid")
            && w[4].is_punct('(')
            && w[5].is_ident("unsafe_code")
            && w[6].is_punct(')')
            && w[7].is_punct(']')
    })
}

/// Whether `rel_path` is the root module of a library crate (where the
/// unsafe-audit rule applies).
fn is_lib_root(rel_path: &str) -> bool {
    rel_path == "src/lib.rs"
        || (rel_path.starts_with("crates/") && rel_path.ends_with("/src/lib.rs"))
}

/// One file's phase-1 result: lexed, parsed, locally analyzed.
struct FilePass {
    parsed: ParsedFile,
    pragmas: Vec<Pragma>,
    findings: Vec<Finding>,
}

/// Runs the token-level (single-file) rules over one lexed file.
fn local_rules(rel_path: &str, toks: &[Tok], pragmas: &[Pragma]) -> Vec<Finding> {
    let mut findings = Vec::new();

    // Pragma hygiene first: unknown rules and missing reasons are findings
    // in their own right (and a reasonless pragma suppresses nothing).
    for p in pragmas {
        for _ in &p.unknown {
            findings.push(Finding::new(rel_path, p.line, Rule::PragmaUnknownRule));
        }
        if !p.unknown.is_empty() || !p.rules.is_empty() {
            if !p.has_reason {
                findings.push(Finding::new(rel_path, p.line, Rule::PragmaMissingReason));
            }
        } else {
            // `ca-audit: allow()` with an empty list: malformed.
            findings.push(Finding::new(rel_path, p.line, Rule::PragmaUnknownRule));
        }
    }

    let in_core = rel_path.starts_with("crates/copyattack-core/src/");
    // env.rs *is* the injection surface — its platform calls are the
    // implementation of the budgeted path, not a bypass of it.
    let in_attack_code = in_core && rel_path != "crates/copyattack-core/src/env.rs";
    let in_service =
        rel_path.starts_with("crates/serve/src/") || rel_path.starts_with("crates/recsys/src/");
    let in_dataplane =
        rel_path.starts_with("crates/recsys/src/") || rel_path.starts_with("crates/datagen/src/");
    // The engine module and the ANN crate *are* the retrieval path; a
    // `.score_batch(` there is the implementation, not a bypass.
    let in_retrieval_path =
        rel_path == "crates/recsys/src/engine.rs" || rel_path.starts_with("crates/ann/src/");

    // Statement window for the unordered-reduce rule: a statement runs
    // between `;`/`{`/`}` boundaries; within one, a float reduction chained
    // after a `par::map*` call is flagged.
    let mut window_has_par_map = false;

    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        match &t.kind {
            TokKind::Punct(c) => {
                if matches!(c, ';' | '{' | '}') {
                    window_has_par_map = false;
                }
                // `.inject_user(` / `.try_inject_user(` / `.append_profile(`
                // — a profile reaching the platform around the environment.
                if in_attack_code
                    && *c == '.'
                    && i + 2 < toks.len()
                    && (toks[i + 1].is_ident("inject_user")
                        || toks[i + 1].is_ident("try_inject_user")
                        || toks[i + 1].is_ident("append_profile"))
                    && toks[i + 2].is_punct('(')
                {
                    findings.push(Finding::new(rel_path, toks[i + 1].line, Rule::EnvInjection));
                }
                // `.score_batch(` — a full-catalog scan off the shared
                // retrieval path. Definitions (`fn score_batch(`) have no
                // leading dot and do not match.
                if !in_retrieval_path
                    && *c == '.'
                    && i + 2 < toks.len()
                    && toks[i + 1].is_ident("score_batch")
                    && toks[i + 2].is_punct('(')
                {
                    findings.push(Finding::new(rel_path, toks[i + 1].line, Rule::ExactScan));
                }
                // `.sum…` / `.fold(` after a par-map in the same statement.
                if *c == '.'
                    && window_has_par_map
                    && i + 1 < toks.len()
                    && (toks[i + 1].is_ident("sum") || toks[i + 1].is_ident("fold"))
                {
                    findings.push(Finding::new(rel_path, toks[i + 1].line, Rule::UnorderedReduce));
                }
            }
            TokKind::Ident(name) => match name.as_str() {
                "HashMap" | "HashSet" => {
                    findings.push(Finding::new(rel_path, t.line, Rule::HashCollections));
                }
                "thread_rng" | "from_entropy" => {
                    findings.push(Finding::new(rel_path, t.line, Rule::AdHocRng));
                }
                "Instant" | "SystemTime" if path2(toks, i, &[name], &["now"]) => {
                    findings.push(Finding::new(rel_path, t.line, Rule::WallClock));
                }
                "thread" if path2(toks, i, &["thread"], &["spawn", "scope"]) => {
                    findings.push(Finding::new(rel_path, t.line, Rule::RawThread));
                }
                "thread" if in_service && path2(toks, i, &["thread"], &["sleep"]) => {
                    findings.push(Finding::new(rel_path, t.line, Rule::ServiceSleep));
                }
                "par" | "ca_par" if path2(toks, i, &[name], &["map", "map_min", "map_mut"]) => {
                    window_has_par_map = true;
                }
                // `Vec < Vec <` — a nested dataset-scale allocation.
                "Vec"
                    if in_dataplane
                        && i + 3 < toks.len()
                        && toks[i + 1].is_punct('<')
                        && toks[i + 2].is_ident("Vec")
                        && toks[i + 3].is_punct('<') =>
                {
                    findings.push(Finding::new(rel_path, t.line, Rule::NestedVec));
                }
                _ => {}
            },
            TokKind::Number(_) => {}
        }
        i += 1;
    }

    if is_lib_root(rel_path) && !has_forbid_unsafe(toks) {
        findings.push(Finding::new(rel_path, 1, Rule::UnsafeAudit));
    }

    findings
}

// ---------------------------------------------------------------------------
// seed-discipline
// ---------------------------------------------------------------------------

/// How a seed argument classifies.
#[derive(Clone, Debug, PartialEq, Eq)]
enum SeedClass {
    /// Mentions a seed-deriving source (`*seed*`, `split_seed`, `child`).
    Disciplined,
    /// Only numeric literals (and cast/arith helpers): a hard-coded seed.
    Literal,
    /// Exactly one bare identifier — possibly a parameter to chase.
    Param(String),
    /// Anything else: unresolvable, conservatively silent.
    Opaque,
}

/// Identifier fragments that make an argument a derived seed.
fn is_seed_source_ident(s: &str) -> bool {
    let lower = s.to_ascii_lowercase();
    lower.contains("seed") || s == "child"
}

/// Arithmetic/cast helpers that do not launder a literal into a source.
fn is_arith_helper(s: &str) -> bool {
    matches!(
        s,
        "as" | "u64"
            | "u32"
            | "usize"
            | "i64"
            | "wrapping_add"
            | "wrapping_mul"
            | "wrapping_sub"
            | "from"
            | "into"
    )
}

/// Classifies the token range of a seed argument. A single bare
/// identifier classifies as [`SeedClass::Param`] *before* the
/// seed-source check — `fn build(seed: u64)` must chase its callers, not
/// trust its own parameter name; the caller decides param-ness and falls
/// back to Disciplined/Opaque.
fn classify_seed_arg(toks: &[Tok]) -> SeedClass {
    let idents: Vec<&str> = toks.iter().filter_map(Tok::ident).collect();
    let has_number = toks.iter().any(Tok::is_number);
    let real_idents: Vec<&str> = idents.iter().copied().filter(|s| !is_arith_helper(s)).collect();
    if real_idents.len() == 1 && !has_number && idents.len() == real_idents.len() {
        return SeedClass::Param(real_idents[0].to_string());
    }
    if idents.iter().any(|s| is_seed_source_ident(s)) {
        return SeedClass::Disciplined;
    }
    if has_number && real_idents.is_empty() {
        return SeedClass::Literal;
    }
    SeedClass::Opaque
}

/// The RNG-construction entry points the rule watches.
fn is_rng_ctor(name: &str) -> bool {
    matches!(name, "seed_from_u64" | "from_seed")
}

/// Cross-file seed-discipline pass.
///
/// Phase A: every `seed_from_u64`/`from_seed` call in a non-test function
/// classifies its argument — literals fire immediately; a bare parameter
/// name records a *seed parameter* to chase. Phase B walks the call graph:
/// any non-test caller passing a literal into a recorded seed parameter
/// fires at the caller's line, even across crates.
fn seed_discipline(ws: &Workspace, graph: &CallGraph) -> Vec<Finding> {
    let mut findings = Vec::new();
    // (fn name, arg position among non-self params) pairs to chase.
    let mut seed_params: Vec<(String, usize)> = Vec::new();

    for site in &graph.sites {
        if !is_rng_ctor(&site.name) {
            continue;
        }
        let fref = ws.all_fns[site.caller];
        if ws.is_test_fn(fref) {
            continue;
        }
        let file = ws.file(fref);
        let args = call_args(&file.toks, site.tok + 1);
        let Some(&(lo, hi)) = args.first() else { continue };
        match classify_seed_arg(&file.toks[lo..hi]) {
            SeedClass::Literal => {
                findings.push(Finding::new(&file.path, site.line, Rule::SeedDiscipline));
            }
            SeedClass::Param(name) => {
                // A parameter of the enclosing fn? Record it for caller
                // propagation. A non-parameter bare name (a local) is
                // trusted only when it looks seed-derived.
                let item = ws.item(fref);
                let (_, params) = file.fn_params(fref.item);
                if let Some(pos) = params.iter().position(|p| p == &name) {
                    seed_params.push((item.name.clone(), pos));
                }
            }
            _ => {}
        }
    }

    // Phase B: chase seed parameters one hop through the call graph.
    seed_params.sort();
    seed_params.dedup();
    for (fn_name, pos) in &seed_params {
        for site in &graph.sites {
            if &site.name != fn_name {
                continue;
            }
            let caller = ws.all_fns[site.caller];
            if ws.is_test_fn(caller) {
                continue;
            }
            let file = ws.file(caller);
            let args = call_args(&file.toks, site.tok + 1);
            let Some(&(lo, hi)) = args.get(*pos) else { continue };
            if classify_seed_arg(&file.toks[lo..hi]) == SeedClass::Literal {
                findings.push(Finding::new(&file.path, site.line, Rule::SeedDiscipline));
            }
        }
    }
    findings
}

// ---------------------------------------------------------------------------
// iteration-order
// ---------------------------------------------------------------------------

/// Iterator adapters that surface a collection's internal order.
fn is_iteration_method(name: &str) -> bool {
    matches!(name, "iter" | "iter_mut" | "into_iter" | "keys" | "values" | "values_mut" | "drain")
}

/// Sinks whose result depends on the order elements arrive in.
fn is_order_sink(name: &str) -> bool {
    matches!(name, "sum" | "product" | "fold" | "collect" | "hash" | "extend")
}

/// Collection targets that re-establish a canonical order (collecting hash
/// iteration into these is sound).
fn is_order_safe_collect_target(name: &str) -> bool {
    matches!(name, "BTreeMap" | "BTreeSet" | "HashMap" | "HashSet")
}

/// Hash-typed local bindings of one function body: parameters declared
/// `name: …HashMap/HashSet…` and `let [mut] name …= …HashMap/HashSet…;`.
fn hash_bindings(file: &ParsedFile, item_idx: usize) -> Vec<String> {
    let mut names = Vec::new();
    let item = &file.items[item_idx];
    // Parameters.
    for (name, ty_range) in file.fn_params_with_types(item_idx) {
        if file.toks[ty_range.0..ty_range.1]
            .iter()
            .any(|t| t.is_ident("HashMap") || t.is_ident("HashSet"))
        {
            names.push(name);
        }
    }
    // Let bindings.
    let Some((lo, hi)) = item.body else { return names };
    let mut i = lo;
    while i < hi {
        if file.toks[i].is_ident("let") {
            let mut j = i + 1;
            if j < hi && file.toks[j].is_ident("mut") {
                j += 1;
            }
            let Some(name) = file.toks.get(j).and_then(Tok::ident) else {
                i += 1;
                continue;
            };
            // Scan the statement (to `;` at delimiter depth 0).
            let mut depth = 0isize;
            let mut k = j + 1;
            let mut is_hash = false;
            while k < hi {
                match &file.toks[k].kind {
                    TokKind::Punct('(') | TokKind::Punct('[') | TokKind::Punct('{') => depth += 1,
                    TokKind::Punct(')') | TokKind::Punct(']') | TokKind::Punct('}') => depth -= 1,
                    TokKind::Punct(';') if depth <= 0 => break,
                    TokKind::Ident(s) if s == "HashMap" || s == "HashSet" => is_hash = true,
                    _ => {}
                }
                k += 1;
            }
            if is_hash {
                names.push(name.to_string());
            }
            i = k;
        } else {
            i += 1;
        }
    }
    names.sort();
    names.dedup();
    names
}

/// Whether the ident at `i` names a hash-typed value: a local binding, or
/// a field access (`.name`) whose field is hash-typed anywhere in the
/// workspace.
fn is_hash_value(file: &ParsedFile, ws: &Workspace, bindings: &[String], i: usize) -> bool {
    let Some(name) = file.toks[i].ident() else { return false };
    if bindings.iter().any(|b| b == name) {
        return true;
    }
    i > 0 && file.toks[i - 1].is_punct('.') && ws.hash_fields.contains_key(name)
}

/// Scans forward from token `i` to the end of the statement, returning the
/// first order-sensitive sink chained onto the expression (`.sum`, `.fold`,
/// `.collect` into an ordered target, `.hash`, …).
fn chained_sink(file: &ParsedFile, i: usize, hi: usize) -> Option<(usize, u32)> {
    let mut depth = 0isize;
    let mut k = i;
    while k < hi {
        match &file.toks[k].kind {
            TokKind::Punct('(') | TokKind::Punct('[') => depth += 1,
            TokKind::Punct(')') | TokKind::Punct(']') => {
                depth -= 1;
                if depth < 0 {
                    return None; // left the enclosing expression
                }
            }
            TokKind::Punct(';') | TokKind::Punct('{') | TokKind::Punct('}') if depth <= 0 => {
                return None;
            }
            TokKind::Punct('.') if depth == 0 => {
                if let Some(name) = file.toks.get(k + 1).and_then(Tok::ident) {
                    if is_order_sink(name) {
                        if name == "collect" {
                            // `.collect::<BTreeMap<…>>()` is order-safe.
                            let safe = file.toks.get(k + 2).is_some_and(|t| t.is_punct(':'))
                                && file.toks.get(k + 4).is_some_and(|t| t.is_punct('<'))
                                && file
                                    .toks
                                    .get(k + 5)
                                    .and_then(Tok::ident)
                                    .is_some_and(is_order_safe_collect_target);
                            if safe {
                                k += 2;
                                continue;
                            }
                        }
                        return Some((k + 1, file.toks[k + 1].line));
                    }
                }
            }
            _ => {}
        }
        k += 1;
    }
    None
}

/// Cross-file iteration-order pass.
///
/// Direct: inside each function, iteration of a hash-typed value
/// (`.iter()`, `.keys()`, `for _ in &map`, …) chained into an
/// order-sensitive sink fires at the iteration line. Cross-file: a
/// function whose hash iteration flows into a `.collect` is *tainted*;
/// any caller chaining that function's result into `sum`/`fold`/`product`
/// fires at the call line — the "float accumulator two functions away"
/// case the per-file scanner could never see.
fn iteration_order(ws: &Workspace, graph: &CallGraph) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut tainted: Vec<String> = Vec::new();

    for &fref in &ws.all_fns {
        let file = ws.file(fref);
        let item = ws.item(fref);
        let Some((lo, hi)) = item.body else { continue };
        let bindings = hash_bindings(file, fref.item);
        let has_hash_fields = !ws.hash_fields.is_empty();
        if bindings.is_empty() && !has_hash_fields {
            continue;
        }
        let nested = file.nested_fn_bodies(fref.item);
        let in_nested = |i: usize| nested.iter().any(|&(s, e)| s <= i && i < e);

        let mut i = lo;
        while i < hi {
            if in_nested(i) {
                i += 1;
                continue;
            }
            let t = &file.toks[i];
            // `recv.iter()` / `recv.keys()` / … method-iteration events.
            if t.is_punct('.')
                && file.toks.get(i + 1).and_then(Tok::ident).is_some_and(is_iteration_method)
                && file.toks.get(i + 2).is_some_and(|t| t.is_punct('('))
                && i > lo
                && is_hash_value(file, ws, &bindings, i - 1)
            {
                let line = file.toks[i + 1].line;
                // Start the chain scan at the iteration call's own `(`,
                // so its `)` balances instead of ending the walk early.
                if let Some((sink_tok, _)) = chained_sink(file, i + 2, hi) {
                    findings.push(Finding::new(&file.path, line, Rule::IterationOrder));
                    if file.toks[sink_tok].is_ident("collect") {
                        tainted.push(item.name.clone());
                    }
                }
            }
            // `for pat in [&]recv {` loop-iteration events.
            if t.is_ident("for") {
                // Find `in` at depth 0 before the loop `{`.
                let mut j = i + 1;
                let mut depth = 0isize;
                let mut in_at = None;
                while j < hi {
                    match &file.toks[j].kind {
                        TokKind::Punct('(') | TokKind::Punct('[') => depth += 1,
                        TokKind::Punct(')') | TokKind::Punct(']') => depth -= 1,
                        TokKind::Punct('{') if depth == 0 => break,
                        TokKind::Ident(s) if s == "in" && depth == 0 => {
                            in_at = Some(j);
                            break;
                        }
                        _ => {}
                    }
                    j += 1;
                }
                if let Some(in_at) = in_at {
                    // Expression tokens between `in` and the body `{`.
                    let mut k = in_at + 1;
                    let mut depth = 0isize;
                    let mut hash_iter = false;
                    while k < hi {
                        match &file.toks[k].kind {
                            TokKind::Punct('(') | TokKind::Punct('[') => depth += 1,
                            TokKind::Punct(')') | TokKind::Punct(']') => depth -= 1,
                            TokKind::Punct('{') if depth == 0 => break,
                            TokKind::Ident(_) if is_hash_value(file, ws, &bindings, k) => {
                                hash_iter = true;
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                    if hash_iter && k < hi {
                        // Loop body: accumulation (`+=`, `.push(`, `.hash(`)
                        // makes the order observable.
                        let close = match_brace(file, k, hi);
                        let body = &file.toks[k..close];
                        let accumulates = body.windows(2).any(|w| {
                            (w[0].is_punct('+') && w[1].is_punct('='))
                                || (w[0].is_punct('.')
                                    && (w[1].is_ident("push") || w[1].is_ident("hash")))
                        });
                        if accumulates {
                            findings.push(Finding::new(&file.path, t.line, Rule::IterationOrder));
                        }
                        i = close;
                        continue;
                    }
                }
            }
            i += 1;
        }
    }

    // Taint pass: callers chaining a tainted fn's result into float
    // accumulation inherit the hazard.
    tainted.sort();
    tainted.dedup();
    if !tainted.is_empty() {
        for site in &graph.sites {
            if !tainted.iter().any(|t| t == &site.name) {
                continue;
            }
            let caller = ws.all_fns[site.caller];
            let file = ws.file(caller);
            let Some((_, hi)) = ws.item(caller).body else { continue };
            // Skip the call's own argument list, then look for a chained
            // float sink.
            let args_end = skip_balanced_parens(file, site.tok + 1, hi);
            if let Some((sink_tok, _)) = chained_sink(file, args_end, hi) {
                let name = file.toks[sink_tok].ident().unwrap_or("");
                if matches!(name, "sum" | "fold" | "product") {
                    findings.push(Finding::new(&file.path, site.line, Rule::IterationOrder));
                }
            }
        }
    }
    findings
}

/// Matching `}` index for the `{` at `open` (clamped to `hi`).
fn match_brace(file: &ParsedFile, open: usize, hi: usize) -> usize {
    let mut depth = 0isize;
    let mut i = open;
    while i < hi {
        if file.toks[i].is_punct('{') {
            depth += 1;
        } else if file.toks[i].is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    hi
}

/// Index just past the `)` matching the `(` at `open` (clamped to `hi`).
fn skip_balanced_parens(file: &ParsedFile, open: usize, hi: usize) -> usize {
    let mut depth = 0isize;
    let mut i = open;
    while i < hi {
        if file.toks[i].is_punct('(') {
            depth += 1;
        } else if file.toks[i].is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    hi
}

// ---------------------------------------------------------------------------
// unmetered-query
// ---------------------------------------------------------------------------

/// Trait impls that *are* the query surface: implementing or forwarding
/// these is the metered path's own machinery, not a bypass of it.
const SURFACE_TRAITS: [&str; 4] =
    ["BlackBoxRecommender", "FallibleBlackBox", "ScoringEngine", "EmbeddingEngine"];

/// Types whose inherent methods are the metered surface.
const SURFACE_TYPES: [&str; 2] = ["MeteredRecommender", "FaultyRecommender"];

/// Path prefixes that are platform/engine internals (they implement
/// ranking; the budget meters *access to* them, not their insides).
const SURFACE_PATHS: [&str; 3] = ["crates/recsys/src/", "crates/ann/src/", "crates/serve/src/"];

/// Path prefixes that hold attack-side code (the reachability roots).
const ATTACK_PATHS: [&str; 2] = ["crates/copyattack-core/src/", "src/"];

/// Whether a function is on the metered surface.
fn is_surface_fn(ws: &Workspace, r: FnRef) -> bool {
    let item = ws.item(r);
    if item.trait_name.as_deref().is_some_and(|t| SURFACE_TRAITS.contains(&t)) {
        return true;
    }
    if item.self_type.as_deref().is_some_and(|t| SURFACE_TYPES.contains(&t)) {
        return true;
    }
    let path = &ws.file(r).path;
    SURFACE_PATHS.iter().any(|p| path.starts_with(p))
}

/// Cross-file unmetered-query pass: call-graph proof that raw ranking
/// calls are unreachable from attack code except through the surface.
///
/// Roots are every non-test function in attack-side paths; traversal never
/// expands surface functions (what sits *behind* the metered wrappers is
/// their implementation). Any reachable, non-surface, non-test function
/// containing a raw `.top_k(`/`.top_k_batch(` fires at the call line.
fn unmetered_query(ws: &Workspace, graph: &CallGraph) -> Vec<Finding> {
    let roots: Vec<usize> = ws
        .all_fns
        .iter()
        .enumerate()
        .filter(|&(_, &r)| {
            let path = &ws.file(r).path;
            ATTACK_PATHS.iter().any(|p| path.starts_with(p)) && !ws.is_test_fn(r)
        })
        .map(|(i, _)| i)
        .collect();
    let blocked = |fid: usize| is_surface_fn(ws, ws.all_fns[fid]);
    let reach = graph.reachable(&roots, blocked);

    let mut findings = Vec::new();
    for site in &graph.sites {
        if !(site.name == "top_k" || site.name == "top_k_batch") {
            continue;
        }
        let fid = site.caller;
        if !reach[fid] {
            continue;
        }
        let fref = ws.all_fns[fid];
        if ws.is_test_fn(fref) || is_surface_fn(ws, fref) {
            continue;
        }
        findings.push(Finding::new(&ws.file(fref).path, site.line, Rule::UnmeteredQuery));
    }
    findings
}

// ---------------------------------------------------------------------------
// the analysis drivers
// ---------------------------------------------------------------------------

/// Runs the full engine — token rules plus the symbol-aware families —
/// over a set of files analyzed *as one workspace*.
///
/// `files` must be in the path order the report should follow (the
/// workspace walker sorts; single-file callers are trivially ordered).
/// Per-file work fans out through `ca_par::map`, so wall-clock scales with
/// `CA_THREADS` while findings stay byte-identical: results come back in
/// input order and every cross-file pass iterates deterministic
/// structures only.
pub fn analyze_sources(files: &[(&str, &str)], cfg: &AuditConfig) -> Vec<Finding> {
    // Phase 1 — per-file: lex, parse, pragma-scan, token rules.
    let passes: Vec<FilePass> = ca_par::map(files, |_, &(path, src)| {
        let (toks, comments) = lex(src);
        let pragmas = parse_pragmas(&comments);
        let findings = local_rules(path, &toks, &pragmas);
        let parsed = parse(path, &toks);
        FilePass { parsed, pragmas, findings }
    });

    // Phase 2 — assemble the workspace and the call graph (serial; the
    // structures are BTree-ordered so iteration is deterministic).
    let ws = Workspace::new(passes.iter().map(|p| p.parsed.clone()).collect());
    let graph = CallGraph::build(&ws);

    // Phase 3 — cross-file rule families.
    let mut findings: Vec<Finding> = passes.iter().flat_map(|p| p.findings.clone()).collect();
    findings.extend(seed_discipline(&ws, &graph));
    findings.extend(iteration_order(&ws, &graph));
    findings.extend(unmetered_query(&ws, &graph));

    // Phase 4 — suppression and ordering. Pragmas suppress by (file, line
    // window); the allowlist by path prefix; then findings sort into the
    // fixed (path, line, rule) report order.
    let rule_pos = |r: Rule| Rule::ALL.iter().position(|&a| a == r).unwrap_or(usize::MAX);
    let pragmas_of = |path: &str| {
        passes.iter().find(|p| p.parsed.path == path).map(|p| p.pragmas.as_slice()).unwrap_or(&[])
    };
    findings.retain(|f| {
        let pragmas = pragmas_of(&f.file);
        match f.rule {
            Rule::PragmaMissingReason | Rule::PragmaUnknownRule => true,
            Rule::UnsafeAudit => {
                !pragmas.iter().any(|p| p.has_reason && p.rules.contains(&Rule::UnsafeAudit))
            }
            rule => !pragmas.iter().any(|p| {
                p.has_reason
                    && p.rules.contains(&rule)
                    && (p.line == f.line || p.line + 1 == f.line)
            }),
        }
    });
    findings.retain(|f| !cfg.is_allowed(&f.file, f.rule));

    let file_pos = |path: &str| files.iter().position(|&(p, _)| p == path).unwrap_or(usize::MAX);
    findings.sort_by(|a, b| {
        (file_pos(&a.file), a.line, rule_pos(a.rule)).cmp(&(
            file_pos(&b.file),
            b.line,
            rule_pos(b.rule),
        ))
    });
    findings.dedup();
    findings
}

/// Runs every applicable rule over one file (a one-file workspace).
///
/// `rel_path` is the workspace-relative path (forward slashes); it scopes
/// path-dependent rules ([`Rule::UnsafeAudit`], [`Rule::ServiceSleep`],
/// the surface/attack paths of [`Rule::UnmeteredQuery`]) and is matched
/// against the allowlist in `cfg`.
pub fn analyze_source(rel_path: &str, src: &str, cfg: &AuditConfig) -> Vec<Finding> {
    analyze_sources(&[(rel_path, src)], cfg)
}
