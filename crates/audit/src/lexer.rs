//! A comment- and string-aware tokenizer for Rust source.
//!
//! The audit rules match on *token* patterns, never on raw text, so a
//! `"HashMap"` inside a string literal, a `thread_rng` in a doc comment, or
//! a commented-out `Instant::now()` can never produce a finding. The lexer
//! is deliberately tiny — identifiers and punctuation are all the rules
//! need — but it handles every way Rust hides text from the token stream:
//! line comments, nested block comments, string/char literals, raw strings
//! (`r#"…"#` with any number of hashes), byte strings, and lifetimes
//! (`'a` must not be confused with a char literal).
//!
//! Line comments are *captured* rather than dropped: suppression pragmas
//! (`// ca-audit: allow(<rule>) — <reason>`) live in them.

/// What a token is: the rules distinguish identifiers (matched by name),
/// single punctuation characters (matched to recognize paths like
/// `Instant::now` or chains like `.top_k(`), and numeric literals (the
/// seed-discipline rule must tell `seed_from_u64(42)` from
/// `seed_from_u64(cfg.seed)`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword. Raw identifiers (`r#match`) arrive with
    /// the `r#` prefix stripped, matching Rust name-resolution semantics.
    Ident(String),
    /// One punctuation character (`::` arrives as two `:` tokens).
    Punct(char),
    /// A numeric literal, verbatim (suffix and underscores included).
    Number(String),
}

/// One token with the 1-based line it starts on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Tok {
    /// The token.
    pub kind: TokKind,
    /// 1-based source line.
    pub line: u32,
}

/// A captured `//` comment (pragmas are parsed out of these).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Comment {
    /// 1-based source line the comment starts on.
    pub line: u32,
    /// Comment text after the `//` (doc-comment markers included).
    pub text: String,
}

impl Tok {
    /// Whether this token is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        matches!(&self.kind, TokKind::Ident(s) if s == name)
    }

    /// Whether this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }

    /// Whether this token is a numeric literal.
    pub fn is_number(&self) -> bool {
        matches!(self.kind, TokKind::Number(_))
    }

    /// The identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokKind::Ident(s) => Some(s),
            _ => None,
        }
    }
}

/// Tokenizes `src`, returning the token stream and the captured `//`
/// comments (block comments cannot carry pragmas and are dropped).
pub fn lex(src: &str) -> (Vec<Tok>, Vec<Comment>) {
    let b: Vec<char> = src.chars().collect();
    let n = b.len();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let mut toks = Vec::new();
    let mut comments = Vec::new();

    while i < n {
        let c = b[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            _ if c.is_whitespace() => i += 1,
            '/' if i + 1 < n && b[i + 1] == '/' => {
                let start = i + 2;
                let mut j = start;
                while j < n && b[j] != '\n' {
                    j += 1;
                }
                comments.push(Comment { line, text: b[start..j].iter().collect() });
                i = j;
            }
            '/' if i + 1 < n && b[i + 1] == '*' => {
                // Block comment; Rust block comments nest.
                let mut depth = 1usize;
                i += 2;
                while i < n && depth > 0 {
                    if b[i] == '\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            '"' => i = skip_string(&b, i, &mut line),
            '\'' => {
                // Char literal or lifetime. `'\x'`-style escapes and `'q'`
                // are literals; `'a` followed by anything but a closing
                // quote is a lifetime (leave the identifier to the ident
                // arm below).
                if i + 1 < n && b[i + 1] == '\\' {
                    i += 2;
                    while i < n && b[i] != '\'' {
                        if b[i] == '\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                    i += 1; // closing quote
                } else if i + 2 < n && b[i + 2] == '\'' {
                    i += 3;
                } else {
                    i += 1; // lifetime tick
                }
            }
            _ if c == '_' || c.is_alphabetic() => {
                let start = i;
                while i < n && (b[i] == '_' || b[i].is_alphanumeric()) {
                    i += 1;
                }
                let ident: String = b[start..i].iter().collect();
                let raw_prefix = matches!(ident.as_str(), "r" | "b" | "br" | "rb");
                if raw_prefix && i < n && b[i] == '"' {
                    // Byte string `b"…"` (or malformed r"…"): normal escapes.
                    i = skip_string(&b, i, &mut line);
                } else if raw_prefix && i < n && b[i] == '#' {
                    // Possible raw string `r#"…"#` / `br##"…"##`.
                    let mut hashes = 0usize;
                    let mut j = i;
                    while j < n && b[j] == '#' {
                        hashes += 1;
                        j += 1;
                    }
                    if j < n && b[j] == '"' {
                        i = skip_raw_string(&b, j + 1, hashes, &mut line);
                    } else if ident == "r"
                        && hashes == 1
                        && j < n
                        && (b[j] == '_' || b[j].is_alphabetic())
                    {
                        // Raw identifier `r#match`: lex as the bare name,
                        // which is what it resolves to.
                        let start = j;
                        i = j;
                        while i < n && (b[i] == '_' || b[i].is_alphanumeric()) {
                            i += 1;
                        }
                        let name: String = b[start..i].iter().collect();
                        toks.push(Tok { kind: TokKind::Ident(name), line });
                    } else {
                        // Stray hash: keep the prefix as an ordinary
                        // identifier.
                        toks.push(Tok { kind: TokKind::Ident(ident), line });
                    }
                } else {
                    toks.push(Tok { kind: TokKind::Ident(ident), line });
                }
            }
            _ if c.is_ascii_digit() => {
                // Numeric literal (including suffixes); consume a fraction
                // only when a digit follows the dot, so `0..n` stays `..`.
                let start = i;
                i += 1;
                while i < n && (b[i] == '_' || b[i].is_alphanumeric()) {
                    i += 1;
                }
                if i + 1 < n && b[i] == '.' && b[i + 1].is_ascii_digit() {
                    i += 1;
                    while i < n && (b[i] == '_' || b[i].is_alphanumeric()) {
                        i += 1;
                    }
                }
                let lit: String = b[start..i].iter().collect();
                toks.push(Tok { kind: TokKind::Number(lit), line });
            }
            _ => {
                toks.push(Tok { kind: TokKind::Punct(c), line });
                i += 1;
            }
        }
    }
    (toks, comments)
}

/// Skips a `"…"` literal starting at the opening quote; returns the index
/// just past the closing quote.
fn skip_string(b: &[char], mut i: usize, line: &mut u32) -> usize {
    i += 1; // opening quote
    while i < b.len() {
        match b[i] {
            '\\' => i += 2,
            '"' => return i + 1,
            '\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Skips a raw string body (cursor just past the opening quote) that closes
/// with `"` followed by `hashes` hash marks.
fn skip_raw_string(b: &[char], mut i: usize, hashes: usize, line: &mut u32) -> usize {
    while i < b.len() {
        if b[i] == '\n' {
            *line += 1;
        } else if b[i] == '"' {
            let mut k = 0usize;
            while k < hashes && i + 1 + k < b.len() && b[i + 1 + k] == '#' {
                k += 1;
            }
            if k == hashes {
                return i + 1 + hashes;
            }
        }
        i += 1;
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .0
            .into_iter()
            .filter_map(|t| match t.kind {
                TokKind::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_and_comments_produce_no_tokens() {
        let src = r##"
            let a = "HashMap in a string";
            // HashMap in a line comment
            /* HashMap in a /* nested */ block comment */
            let b = r#"HashMap in a raw string"#;
            let c = b"HashMap in a byte string";
        "##;
        let ids = idents(src);
        assert!(!ids.iter().any(|s| s == "HashMap"), "leaked: {ids:?}");
        assert!(ids.contains(&"let".to_string()));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        // If `'a` were lexed as a char literal the following `>` and ident
        // would be swallowed.
        let ids = idents("fn f<'a>(x: &'a HashMap<u32, u32>) {}");
        assert!(ids.contains(&"HashMap".to_string()));
        let ids = idents("let c = 'x'; let d = '\\n'; Instant::now()");
        assert!(ids.contains(&"Instant".to_string()));
    }

    #[test]
    fn line_numbers_are_accurate() {
        let (toks, comments) = lex("a\nb // note\nc");
        let find = |name: &str| toks.iter().find(|t| t.is_ident(name)).unwrap().line;
        assert_eq!(find("a"), 1);
        assert_eq!(find("b"), 2);
        assert_eq!(find("c"), 3);
        assert_eq!(comments[0].line, 2);
        assert_eq!(comments[0].text.trim(), "note");
    }

    #[test]
    fn numeric_ranges_keep_their_dots() {
        let (toks, _) = lex("for i in 0..10 { x.sum() }");
        // `0..10` must leave two '.' puncts and then the `.sum` chain.
        let dots = toks.iter().filter(|t| t.is_punct('.')).count();
        assert_eq!(dots, 3);
    }

    #[test]
    fn numeric_literals_are_tokens_with_their_text() {
        let (toks, _) = lex("seed_from_u64(0xFEED); let x = 1_000u64 + 2.5f32;");
        let nums: Vec<&str> = toks
            .iter()
            .filter_map(|t| match &t.kind {
                TokKind::Number(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(nums, vec!["0xFEED", "1_000u64", "2.5f32"]);
    }

    #[test]
    fn raw_identifiers_lex_as_their_bare_name() {
        let ids = idents("fn r#match(r#type: u32) {} let a = r#\"not an ident\"#;");
        assert!(ids.contains(&"match".to_string()));
        assert!(ids.contains(&"type".to_string()));
        assert!(!ids.iter().any(|s| s.contains('#')));
        assert!(!ids.iter().any(|s| s.contains("not")));
    }
}
