//! Finding reporters: human-readable text and machine-readable JSON.
//!
//! JSON serialization is hand-rolled (the crate is dependency-free); the
//! escape routine covers everything a path, message, or hint can contain.

use crate::rules::Finding;

/// Human-readable report: one `file:line [rule] message` block per finding
/// plus a fix hint, ending with a summary line.
pub fn human(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&format!("{}:{} [{}] {}\n", f.file, f.line, f.rule.id(), f.message));
        out.push_str(&format!("    hint: {}\n", f.rule.hint()));
    }
    if findings.is_empty() {
        out.push_str("ca-audit: clean\n");
    } else {
        out.push_str(&format!("ca-audit: {} finding(s)\n", findings.len()));
    }
    out
}

/// JSON report: `{"findings": [...], "count": N}`.
pub fn json(findings: &[Finding]) -> String {
    let mut out = String::from("{\"findings\":[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"file\":{},\"line\":{},\"rule\":{},\"message\":{},\"hint\":{}}}",
            escape(&f.file),
            f.line,
            escape(f.rule.id()),
            escape(&f.message),
            escape(f.rule.hint()),
        ));
    }
    out.push_str(&format!("],\"count\":{}}}", findings.len()));
    out
}

/// JSON string escaping (quotes, backslashes, control characters).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Rule;

    fn sample() -> Vec<Finding> {
        vec![Finding {
            file: "crates/x/src/lib.rs".into(),
            line: 7,
            rule: Rule::WallClock,
            message: Rule::WallClock.message().into(),
        }]
    }

    #[test]
    fn human_report_names_rule_and_line() {
        let r = human(&sample());
        assert!(r.contains("crates/x/src/lib.rs:7 [wall-clock]"));
        assert!(r.contains("hint:"));
        assert!(r.ends_with("1 finding(s)\n"));
        assert!(human(&[]).contains("clean"));
    }

    #[test]
    fn json_report_is_well_formed() {
        let r = json(&sample());
        assert!(r.starts_with("{\"findings\":[{\"file\":\"crates/x/src/lib.rs\""));
        assert!(r.ends_with("\"count\":1}"));
        assert!(r.contains("\"rule\":\"wall-clock\""));
        assert_eq!(json(&[]), "{\"findings\":[],\"count\":0}");
    }

    #[test]
    fn escape_handles_quotes_and_control() {
        assert_eq!(escape("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(escape("\u{1}"), "\"\\u0001\"");
    }
}
