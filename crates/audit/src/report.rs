//! Finding reporters: human-readable text, machine-readable JSON, and
//! GitHub Actions workflow annotations.
//!
//! JSON serialization is hand-rolled (the crate takes no external
//! dependencies); the escape routine covers everything a path, message,
//! or hint can contain. The github format emits one
//! `::error`/`::warning` workflow command per finding, with the
//! `%`/newline escaping the Actions runner requires.

use crate::rules::Severity;
use crate::AuditOutcome;

/// Human-readable report: one `file:line [rule] message` block per finding
/// plus a fix hint, then stale-baseline entries, ending with a summary.
pub fn human(outcome: &AuditOutcome) -> String {
    let mut out = String::new();
    for f in &outcome.findings {
        out.push_str(&format!(
            "{}:{} [{}] {}: {}\n",
            f.file,
            f.line,
            f.rule.id(),
            f.severity().id(),
            f.message
        ));
        out.push_str(&format!("    hint: {}\n", f.rule.hint()));
    }
    for s in &outcome.stale {
        out.push_str(&format!(
            "audit.baseline [{}] {}: baseline says {} finding(s), tree has {} — ratchet down \
             with --write-baseline\n",
            s.rule, s.file, s.baselined, s.actual
        ));
    }
    if outcome.is_clean() {
        if outcome.baselined > 0 {
            out.push_str(&format!(
                "ca-audit: clean ({} baselined finding(s) suppressed)\n",
                outcome.baselined
            ));
        } else {
            out.push_str("ca-audit: clean\n");
        }
    } else {
        out.push_str(&format!(
            "ca-audit: {} finding(s), {} stale baseline entr(ies)\n",
            outcome.findings.len(),
            outcome.stale.len()
        ));
    }
    out
}

/// JSON report:
/// `{"findings":[…],"count":N,"baselined":N,"stale":[…]}`.
pub fn json(outcome: &AuditOutcome) -> String {
    let mut out = String::from("{\"findings\":[");
    for (i, f) in outcome.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"file\":{},\"line\":{},\"rule\":{},\"severity\":{},\"message\":{},\"hint\":{}}}",
            escape(&f.file),
            f.line,
            escape(f.rule.id()),
            escape(f.severity().id()),
            escape(&f.message),
            escape(f.rule.hint()),
        ));
    }
    out.push_str(&format!(
        "],\"count\":{},\"baselined\":{},\"stale\":[",
        outcome.findings.len(),
        outcome.baselined
    ));
    for (i, s) in outcome.stale.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"rule\":{},\"file\":{},\"baselined\":{},\"actual\":{}}}",
            escape(&s.rule),
            escape(&s.file),
            s.baselined,
            s.actual
        ));
    }
    out.push_str("]}");
    out
}

/// GitHub Actions annotations: one workflow command per finding (Deny →
/// `::error`, Warn → `::warning`), plus an `::error` per stale baseline
/// entry. A trailing plain-text summary line keeps the job log readable.
pub fn github(outcome: &AuditOutcome) -> String {
    let mut out = String::new();
    for f in &outcome.findings {
        let cmd = match f.severity() {
            Severity::Deny => "error",
            Severity::Warn => "warning",
        };
        out.push_str(&format!(
            "::{cmd} file={},line={},title=ca-audit {}::{}%0Ahint: {}\n",
            gh_property(&f.file),
            f.line,
            gh_property(f.rule.id()),
            gh_message(&f.message),
            gh_message(f.rule.hint()),
        ));
    }
    for s in &outcome.stale {
        out.push_str(&format!(
            "::error file={},title=ca-audit stale-baseline::baseline says {} [{}] finding(s), \
             tree has {} — regenerate with --write-baseline\n",
            gh_property(&s.file),
            s.baselined,
            gh_message(&s.rule),
            s.actual
        ));
    }
    out.push_str(&format!(
        "ca-audit: {} finding(s), {} baselined, {} stale baseline entr(ies)\n",
        outcome.findings.len(),
        outcome.baselined,
        outcome.stale.len()
    ));
    out
}

/// Escapes a workflow-command *message* (`%`, CR, LF).
fn gh_message(s: &str) -> String {
    s.replace('%', "%25").replace('\r', "%0D").replace('\n', "%0A")
}

/// Escapes a workflow-command *property* (message escapes plus `:` / `,`,
/// which delimit properties).
fn gh_property(s: &str) -> String {
    gh_message(s).replace(':', "%3A").replace(',', "%2C")
}

/// JSON string escaping (quotes, backslashes, control characters).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::StaleEntry;
    use crate::rules::{Finding, Rule};

    fn sample() -> AuditOutcome {
        AuditOutcome {
            findings: vec![Finding {
                file: "crates/x/src/lib.rs".into(),
                line: 7,
                rule: Rule::WallClock,
                message: Rule::WallClock.message().into(),
            }],
            baselined: 0,
            stale: Vec::new(),
        }
    }

    #[test]
    fn human_report_names_rule_line_and_severity() {
        let r = human(&sample());
        assert!(r.contains("crates/x/src/lib.rs:7 [wall-clock] deny:"));
        assert!(r.contains("hint:"));
        assert!(r.contains("1 finding(s)"));
        assert!(human(&AuditOutcome::default()).contains("clean"));
    }

    #[test]
    fn human_report_surfaces_stale_baseline_entries() {
        let mut o = AuditOutcome::default();
        o.stale.push(StaleEntry {
            rule: "wall-clock".into(),
            file: "src/a.rs".into(),
            baselined: 3,
            actual: 1,
        });
        let r = human(&o);
        assert!(r.contains("baseline says 3 finding(s), tree has 1"));
        assert!(!r.contains("clean"));
    }

    #[test]
    fn json_report_is_well_formed() {
        let r = json(&sample());
        assert!(r.starts_with("{\"findings\":[{\"file\":\"crates/x/src/lib.rs\""));
        assert!(r.contains("\"rule\":\"wall-clock\""));
        assert!(r.contains("\"severity\":\"deny\""));
        assert!(r.contains("\"count\":1"));
        assert!(r.ends_with("\"stale\":[]}"));
        assert_eq!(
            json(&AuditOutcome::default()),
            "{\"findings\":[],\"count\":0,\"baselined\":0,\"stale\":[]}"
        );
    }

    #[test]
    fn json_escapes_quotes_and_backslashes_in_paths_and_messages() {
        let mut o = sample();
        o.findings[0].file = "crates\\x\\src\\lib.rs".into();
        o.findings[0].message = "say \"hi\"\nnewline".into();
        let r = json(&o);
        assert!(r.contains("\"file\":\"crates\\\\x\\\\src\\\\lib.rs\""));
        assert!(r.contains("\"message\":\"say \\\"hi\\\"\\nnewline\""));
        // Still structurally valid: balanced braces/brackets, no raw
        // control characters.
        assert!(!r.chars().any(|c| (c as u32) < 0x20));
    }

    #[test]
    fn escape_handles_quotes_and_control() {
        assert_eq!(escape("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(escape("\u{1}"), "\"\\u0001\"");
        assert_eq!(escape("tab\there"), "\"tab\\there\"");
        assert_eq!(escape("\r"), "\"\\r\"");
    }

    #[test]
    fn github_annotations_escape_and_rank_by_severity() {
        let mut o = sample();
        o.findings.push(Finding {
            file: "src/b.rs".into(),
            line: 2,
            rule: Rule::IterationOrder,
            message: "50% of\nruns".into(),
        });
        o.stale.push(StaleEntry {
            rule: "nested-vec".into(),
            file: "src/c.rs".into(),
            baselined: 2,
            actual: 0,
        });
        let r = github(&o);
        assert!(r.contains("::error file=crates/x/src/lib.rs,line=7,title=ca-audit wall-clock::"));
        assert!(r.contains("::warning file=src/b.rs"), "warn severity maps to ::warning");
        assert!(r.contains("50%25 of%0Aruns"), "percent and newline are escaped");
        assert!(r.contains("::error file=src/c.rs,title=ca-audit stale-baseline::"));
        assert!(r.lines().last().unwrap().starts_with("ca-audit: 2 finding(s), 0 baselined"));
    }
}
