//! The audit configuration: which paths are exempt from which rules.
//!
//! The allowlist is code, not a config file, on purpose: an exemption is a
//! reviewed policy decision, and the reason column keeps it honest. Inline
//! pragmas (`// ca-audit: allow(<rule>) — <reason>`) handle single sites;
//! allowlist entries handle whole path prefixes (bench binaries, the
//! `ca-par` runtime itself, the audit fixtures).

use crate::rules::Rule;

/// One path-prefix exemption.
#[derive(Clone, Debug)]
pub struct AllowEntry {
    /// Workspace-relative path prefix (forward slashes).
    pub prefix: &'static str,
    /// `None` exempts the prefix from *every* rule (the walker skips such
    /// files entirely); `Some(rule)` exempts exactly one rule.
    pub rule: Option<Rule>,
    /// Why the exemption is sound — mandatory, mirroring the pragma policy.
    pub reason: &'static str,
}

/// The audit configuration.
#[derive(Clone, Debug, Default)]
pub struct AuditConfig {
    /// Path-prefix exemptions.
    pub allow: Vec<AllowEntry>,
}

impl AuditConfig {
    /// A configuration with no exemptions (fixture tests use this).
    pub fn strict() -> Self {
        AuditConfig { allow: Vec::new() }
    }

    /// This workspace's policy.
    pub fn workspace_default() -> Self {
        AuditConfig {
            allow: vec![
                AllowEntry {
                    prefix: "crates/bench/",
                    rule: None,
                    reason: "bench binaries measure wall-clock by design and never feed \
                             attack results",
                },
                AllowEntry {
                    prefix: "crates/audit/tests/fixtures/",
                    rule: None,
                    reason: "known-bad lint fixtures must keep their violations",
                },
                AllowEntry {
                    prefix: "crates/par/src/",
                    rule: Some(Rule::RawThread),
                    reason: "ca-par is the runtime the rule points everyone else at",
                },
            ],
        }
    }

    /// Whether `path` is fully exempt (an entry with `rule: None` matches).
    pub fn is_file_skipped(&self, path: &str) -> bool {
        self.allow.iter().any(|e| e.rule.is_none() && path.starts_with(e.prefix))
    }

    /// Whether `rule` is exempt at `path`.
    pub fn is_allowed(&self, path: &str, rule: Rule) -> bool {
        self.allow.iter().any(|e| path.starts_with(e.prefix) && e.rule.is_none_or(|r| r == rule))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_default_scopes_exemptions() {
        let cfg = AuditConfig::workspace_default();
        assert!(cfg.is_file_skipped("crates/bench/src/bin/offline.rs"));
        assert!(!cfg.is_file_skipped("crates/par/src/lib.rs"));
        assert!(cfg.is_allowed("crates/par/src/lib.rs", Rule::RawThread));
        assert!(!cfg.is_allowed("crates/par/src/lib.rs", Rule::WallClock));
        assert!(!cfg.is_allowed("crates/recsys/src/engine.rs", Rule::RawThread));
    }

    #[test]
    fn every_exemption_carries_a_reason() {
        for e in AuditConfig::workspace_default().allow {
            assert!(!e.reason.trim().is_empty(), "no reason for {}", e.prefix);
        }
    }
}
