//! The ratchet baseline: a checked-in ledger of known findings.
//!
//! The baseline lets a new rule land at `Deny` severity without blocking
//! the tree on pre-existing debt: known findings are suppressed, new ones
//! still fail. The ledger only ratchets *down* — when a file's real count
//! drops below its baselined count, the stale entry is itself a failure
//! until the ledger is regenerated (`--write-baseline`), so fixed debt can
//! never silently regress. `DESIGN.md` §16 states the policy.
//!
//! Format: one entry per line, `<rule-id> <count> <path>`, sorted by
//! (rule, path). `#` starts a comment; blank lines are ignored. The file
//! is regenerated, never hand-edited, so the grammar stays minimal.

use std::collections::BTreeMap;

use crate::rules::Finding;

/// Parsed baseline: `(rule-id, path) → accepted count`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Baseline {
    entries: BTreeMap<(String, String), usize>,
}

/// A baseline entry whose debt has (partly) been paid: the ledger says
/// `baselined` findings but the tree now has `actual`. The ratchet demands
/// the ledger shrink to match.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StaleEntry {
    /// Rule id of the entry.
    pub rule: String,
    /// File path of the entry.
    pub file: String,
    /// Count recorded in the baseline.
    pub baselined: usize,
    /// Count actually found (strictly less than `baselined`).
    pub actual: usize,
}

impl Baseline {
    /// An empty baseline (suppresses nothing).
    pub fn empty() -> Baseline {
        Baseline::default()
    }

    /// Parses baseline text; malformed lines are errors (a typo that
    /// silently suppressed nothing would defeat the ledger).
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut entries = BTreeMap::new();
        for (no, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let (Some(rule), Some(count), Some(path), None) =
                (parts.next(), parts.next(), parts.next(), parts.next())
            else {
                return Err(format!("baseline line {}: expected `<rule> <count> <path>`", no + 1));
            };
            let count: usize = count
                .parse()
                .map_err(|_| format!("baseline line {}: bad count {count:?}", no + 1))?;
            if count == 0 {
                return Err(format!("baseline line {}: zero-count entry is dead weight", no + 1));
            }
            if crate::rules::Rule::from_id(rule).is_none() {
                return Err(format!("baseline line {}: unknown rule {rule:?}", no + 1));
            }
            if entries.insert((rule.to_string(), path.to_string()), count).is_some() {
                return Err(format!("baseline line {}: duplicate entry", no + 1));
            }
        }
        Ok(Baseline { entries })
    }

    /// Renders the baseline that would accept exactly `findings`.
    pub fn render(findings: &[Finding]) -> String {
        let mut counts: BTreeMap<(String, String), usize> = BTreeMap::new();
        for f in findings {
            *counts.entry((f.rule.id().to_string(), f.file.clone())).or_insert(0) += 1;
        }
        let mut out = String::from(
            "# ca-audit ratchet baseline — regenerate with `cargo run -p ca-audit -- \
             --write-baseline`.\n# One accepted-debt entry per line: <rule> <count> <path>. \
             Counts may only shrink.\n",
        );
        for ((rule, path), n) in &counts {
            out.push_str(&format!("{rule} {n} {path}\n"));
        }
        out
    }

    /// Number of entries in the ledger.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the ledger is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Applies the ratchet: returns `(surviving findings, suppressed
    /// count, stale entries)`.
    ///
    /// Per `(rule, file)` group: actual count ≤ baselined suppresses the
    /// whole group (strictly less also reports the entry as stale — the
    /// ratchet must be tightened); actual > baselined reports **all** of
    /// the group's findings, not just the excess, since line numbers
    /// shift and there is no stable identity to diff by.
    pub fn apply(&self, findings: Vec<Finding>) -> (Vec<Finding>, usize, Vec<StaleEntry>) {
        let mut actual: BTreeMap<(String, String), usize> = BTreeMap::new();
        for f in &findings {
            *actual.entry((f.rule.id().to_string(), f.file.clone())).or_insert(0) += 1;
        }
        let mut suppressed = 0usize;
        let survivors: Vec<Finding> = findings
            .into_iter()
            .filter(|f| {
                let key = (f.rule.id().to_string(), f.file.clone());
                let keep = match self.entries.get(&key) {
                    Some(&accepted) => actual.get(&key).copied().unwrap_or(0) > accepted,
                    None => true,
                };
                if !keep {
                    suppressed += 1;
                }
                keep
            })
            .collect();
        let mut stale = Vec::new();
        for ((rule, file), &accepted) in &self.entries {
            let n = actual.get(&(rule.clone(), file.clone())).copied().unwrap_or(0);
            if n < accepted {
                stale.push(StaleEntry {
                    rule: rule.clone(),
                    file: file.clone(),
                    baselined: accepted,
                    actual: n,
                });
            }
        }
        (survivors, suppressed, stale)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Rule;

    fn finding(rule: Rule, file: &str, line: u32) -> Finding {
        Finding { file: file.to_string(), line, rule, message: rule.message().to_string() }
    }

    #[test]
    fn render_parse_round_trips() {
        let findings = vec![
            finding(Rule::WallClock, "src/a.rs", 3),
            finding(Rule::WallClock, "src/a.rs", 9),
            finding(Rule::NestedVec, "crates/x/src/b.rs", 1),
        ];
        let text = Baseline::render(&findings);
        let b = Baseline::parse(&text).unwrap();
        assert_eq!(b.len(), 2);
        let (left, suppressed, stale) = b.apply(findings);
        assert!(left.is_empty());
        assert_eq!(suppressed, 3);
        assert!(stale.is_empty());
    }

    #[test]
    fn exceeding_the_baseline_reports_the_whole_group() {
        let b = Baseline::parse("wall-clock 1 src/a.rs\n").unwrap();
        let findings =
            vec![finding(Rule::WallClock, "src/a.rs", 3), finding(Rule::WallClock, "src/a.rs", 9)];
        let (left, suppressed, stale) = b.apply(findings);
        assert_eq!(left.len(), 2, "no stable identity: the whole group resurfaces");
        assert_eq!(suppressed, 0);
        assert!(stale.is_empty());
    }

    #[test]
    fn paid_debt_makes_the_entry_stale() {
        let b = Baseline::parse("wall-clock 2 src/a.rs\n# comment\n\n").unwrap();
        let (left, suppressed, stale) = b.apply(vec![finding(Rule::WallClock, "src/a.rs", 3)]);
        assert!(left.is_empty());
        assert_eq!(suppressed, 1);
        assert_eq!(
            stale,
            vec![StaleEntry {
                rule: "wall-clock".into(),
                file: "src/a.rs".into(),
                baselined: 2,
                actual: 1
            }]
        );
    }

    #[test]
    fn malformed_lines_are_errors() {
        assert!(Baseline::parse("wall-clock src/a.rs\n").is_err(), "missing count");
        assert!(Baseline::parse("wall-clock x src/a.rs\n").is_err(), "bad count");
        assert!(Baseline::parse("wall-clock 0 src/a.rs\n").is_err(), "zero count");
        assert!(Baseline::parse("no-such-rule 1 src/a.rs\n").is_err(), "unknown rule");
        assert!(
            Baseline::parse("wall-clock 1 src/a.rs\nwall-clock 2 src/a.rs\n").is_err(),
            "duplicate"
        );
        assert!(Baseline::parse("wall-clock 1 a b\n").is_err(), "trailing field");
    }
}
