//! The `ca-audit` CLI: run the workspace lint pass and report findings.
//!
//! ```text
//! cargo run -p ca-audit                    # human-readable report
//! cargo run -p ca-audit -- --format json   # machine-readable (CI)
//! cargo run -p ca-audit -- --root <path>   # explicit workspace root
//! ```
//!
//! Exit status: 0 when clean, 1 when findings exist, 2 on usage or I/O
//! errors — so CI can gate on the exit code alone.

#![forbid(unsafe_code)]
// The whole point of this binary is writing a report to stdout.
#![allow(clippy::print_stdout)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut format = "human".to_string();
    let mut root: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--format" => match args.next() {
                Some(f) if f == "human" || f == "json" => format = f,
                _ => return usage("--format takes `human` or `json`"),
            },
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => return usage("--root takes a path"),
            },
            "--help" | "-h" => {
                println!("usage: ca-audit [--format human|json] [--root <workspace>]");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let root = root.or_else(|| {
        let cwd = std::env::current_dir().ok()?;
        ca_audit::find_workspace_root(&cwd)
    });
    let Some(root) = root else {
        return usage("no workspace root found (pass --root)");
    };

    match ca_audit::audit_workspace(&root) {
        Ok(findings) => {
            match format.as_str() {
                "json" => println!("{}", ca_audit::report::json(&findings)),
                _ => print!("{}", ca_audit::report::human(&findings)),
            }
            if findings.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("ca-audit: {e}");
            ExitCode::from(2)
        }
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("ca-audit: {msg}");
    eprintln!("usage: ca-audit [--format human|json] [--root <workspace>]");
    ExitCode::from(2)
}
