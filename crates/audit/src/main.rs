//! The `ca-audit` CLI: run the workspace lint pass and report findings.
//!
//! ```text
//! cargo run -p ca-audit                        # human-readable report
//! cargo run -p ca-audit -- --format json       # machine-readable
//! cargo run -p ca-audit -- --format github     # CI annotations
//! cargo run -p ca-audit -- --write-baseline    # regenerate audit.baseline
//! cargo run -p ca-audit -- --self-check        # audit the auditor itself
//! ```
//!
//! The ratchet baseline at `<root>/audit.baseline` is applied when the
//! file exists (`--baseline <path>` overrides, `--no-baseline` disables).
//! Exit status: 0 when no Deny finding and no stale baseline entry
//! survives (`--deny-warnings` promotes Warn findings to failures), 1 on
//! failure, 2 on usage or I/O errors — so CI can gate on the exit code
//! alone.

#![forbid(unsafe_code)]
// The whole point of this binary is writing a report to stdout.
#![allow(clippy::print_stdout)]

use std::path::PathBuf;
use std::process::ExitCode;

use ca_audit::{AuditConfig, Baseline};

const USAGE: &str = "usage: ca-audit [--format human|json|github] [--root <workspace>] \
                     [--baseline <path>] [--no-baseline] [--write-baseline] [--self-check] \
                     [--deny-warnings]";

fn main() -> ExitCode {
    let mut format = "human".to_string();
    let mut root: Option<PathBuf> = None;
    let mut baseline_path: Option<PathBuf> = None;
    let mut no_baseline = false;
    let mut write_baseline = false;
    let mut self_check = false;
    let mut deny_warnings = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--format" => match args.next() {
                Some(f) if f == "human" || f == "json" || f == "github" => format = f,
                _ => return usage("--format takes `human`, `json`, or `github`"),
            },
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => return usage("--root takes a path"),
            },
            "--baseline" => match args.next() {
                Some(p) => baseline_path = Some(PathBuf::from(p)),
                None => return usage("--baseline takes a path"),
            },
            "--no-baseline" => no_baseline = true,
            "--write-baseline" => write_baseline = true,
            "--self-check" => self_check = true,
            "--deny-warnings" => deny_warnings = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }
    if no_baseline && baseline_path.is_some() {
        return usage("--no-baseline and --baseline are mutually exclusive");
    }

    let root = root.or_else(|| {
        let cwd = std::env::current_dir().ok()?;
        ca_audit::find_workspace_root(&cwd)
    });
    let Some(root) = root else {
        return usage("no workspace root found (pass --root)");
    };

    let cfg = AuditConfig::workspace_default();
    // The self-check audits the auditor's own sources with no baseline:
    // the lint engine must hold itself to the strict contract.
    let prefix = self_check.then_some("crates/audit/");

    if write_baseline {
        let findings = match ca_audit::audit_workspace_with(&root, &cfg) {
            Ok(f) => f,
            Err(e) => return io_error(&e),
        };
        let path = baseline_path.unwrap_or_else(|| root.join("audit.baseline"));
        if let Err(e) = std::fs::write(&path, Baseline::render(&findings)) {
            return io_error(&e);
        }
        println!("ca-audit: wrote {} ({} finding(s) accepted)", path.display(), findings.len());
        return ExitCode::SUCCESS;
    }

    let baseline = if no_baseline || self_check {
        Baseline::empty()
    } else {
        let path = baseline_path.clone().unwrap_or_else(|| root.join("audit.baseline"));
        match std::fs::read_to_string(&path) {
            Ok(text) => match Baseline::parse(&text) {
                Ok(b) => b,
                Err(e) => return usage(&format!("{}: {e}", path.display())),
            },
            // A missing default baseline just means no accepted debt; an
            // explicitly requested one must exist.
            Err(e) if baseline_path.is_some() => return io_error(&e),
            Err(_) => Baseline::empty(),
        }
    };

    let outcome = match ca_audit::audit_workspace_outcome(&root, &cfg, &baseline, prefix) {
        Ok(o) => o,
        Err(e) => return io_error(&e),
    };
    match format.as_str() {
        "json" => println!("{}", ca_audit::report::json(&outcome)),
        "github" => print!("{}", ca_audit::report::github(&outcome)),
        _ => print!("{}", ca_audit::report::human(&outcome)),
    }
    let failed = outcome.failed() || (deny_warnings && !outcome.is_clean());
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("ca-audit: {msg}");
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

fn io_error(e: &std::io::Error) -> ExitCode {
    eprintln!("ca-audit: {e}");
    ExitCode::from(2)
}
