//! An item-level parser over the token stream: just enough structure for
//! symbol-aware rules.
//!
//! The audit engine does not need types, lifetimes, or expression trees —
//! it needs to know **which function a token belongs to**, whether that
//! function is test code, and what `impl` block it sits in. This module
//! recovers exactly that skeleton from the [`crate::lexer`] stream:
//! `fn`/`struct`/`enum`/`trait`/`impl`/`mod`/`use` items with token spans,
//! `#[test]`/`#[cfg(test)]` attribution (inherited through nested
//! modules *and* through function bodies, where test files like to define
//! local fakes), and the enclosing-impl context of every method.
//!
//! Known approximations, by design (see `DESIGN.md` §16):
//!
//! - a `{` inside a const-generic argument (`Foo<{ N + 1 }>`) in a
//!   signature would be taken for the body opener;
//! - macro-generated items are invisible (macros are not expanded);
//! - `impl Trait` in return position never reaches the item scanner
//!   because the enclosing `fn` swallows its whole signature first.

use crate::lexer::{Tok, TokKind};

/// Token-range plus line-range location of an item.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Span {
    /// 1-based first line.
    pub line_start: u32,
    /// 1-based last line.
    pub line_end: u32,
    /// Index of the first token (the item keyword or its name).
    pub tok_start: usize,
    /// Exclusive index one past the last token.
    pub tok_end: usize,
}

/// What kind of item a [`Item`] is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ItemKind {
    /// A function or method (including trait default methods).
    Fn,
    /// A `struct` definition.
    Struct,
    /// An `enum` definition.
    Enum,
    /// A `trait` definition.
    Trait,
    /// An `impl` block.
    Impl,
    /// An inline `mod name { … }` module.
    Mod,
    /// A `use` declaration.
    Use,
}

/// One parsed item.
#[derive(Clone, Debug)]
pub struct Item {
    /// The item kind.
    pub kind: ItemKind,
    /// The item's name: fn/struct/enum/trait/mod name, the *type* name for
    /// an `impl` block, or the last path segment for a `use`.
    pub name: String,
    /// For `impl Trait for Type` blocks (and the methods inside them): the
    /// trait's last path segment. `None` for inherent impls.
    pub trait_name: Option<String>,
    /// For methods: the enclosing `impl` block's type name (or the trait
    /// name for trait default methods).
    pub self_type: Option<String>,
    /// Whether this item is test code: carries `#[test]`/`#[cfg(test)]`,
    /// or is nested (at any depth) inside an item that does.
    pub is_test: bool,
    /// Where the item sits in the token stream.
    pub span: Span,
    /// Token range *inside* the braces of the item's body (`None` for
    /// bodyless items: trait method signatures, unit structs, `use`).
    pub body: Option<(usize, usize)>,
    /// Index (into the items list) of the innermost enclosing `fn`, for
    /// items declared inside function bodies.
    pub parent_fn: Option<usize>,
}

/// One file, parsed: the token stream plus the item skeleton.
#[derive(Clone, Debug)]
pub struct ParsedFile {
    /// Workspace-relative path (forward slashes).
    pub path: String,
    /// The token stream the spans index into.
    pub toks: Vec<Tok>,
    /// All items, in source order (nested items follow their parents).
    pub items: Vec<Item>,
}

impl ParsedFile {
    /// Indices of all `Fn` items.
    pub fn fns(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.items.len()).filter(|&i| self.items[i].kind == ItemKind::Fn)
    }

    /// The innermost `Fn` item whose span contains token index `tok`.
    pub fn fn_at(&self, tok: usize) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (i, it) in self.items.iter().enumerate() {
            if it.kind == ItemKind::Fn && it.span.tok_start <= tok && tok < it.span.tok_end {
                let tighter = best.is_none_or(|b| {
                    self.items[b].span.tok_end - self.items[b].span.tok_start
                        > it.span.tok_end - it.span.tok_start
                });
                if tighter {
                    best = Some(i);
                }
            }
        }
        best
    }

    /// Parameter names of `Fn` item `f`, excluding `self`; the flag says
    /// whether a `self` receiver was present. Pattern parameters
    /// (`(a, b): (u32, u32)`) contribute their first identifier.
    pub fn fn_params(&self, f: usize) -> (bool, Vec<String>) {
        let mut has_self = false;
        let names = self
            .fn_params_with_types(f)
            .into_iter()
            .filter_map(|(name, _)| {
                if name == "self" {
                    has_self = true;
                    None
                } else {
                    Some(name)
                }
            })
            .collect();
        (has_self, names)
    }

    /// Parameters of `Fn` item `f` as `(name, type-token-range)` pairs
    /// (`self` receivers appear with the range covering their annotation,
    /// if any). Comma splitting tracks paren/bracket/brace *and* angle
    /// depth so `HashMap<u32, f32>` stays one parameter.
    pub fn fn_params_with_types(&self, f: usize) -> Vec<(String, (usize, usize))> {
        let item = &self.items[f];
        let mut i = item.span.tok_start;
        let end = item.span.tok_end.min(self.toks.len());
        // Skip `fn name`, then a generic list if present (it may contain
        // parens: `<F: Fn(u32) -> u32>`), landing on the parameter `(`.
        while i < end && !self.toks[i].is_ident("fn") {
            i += 1;
        }
        i += 2; // `fn` + name
        if i < end && self.toks[i].is_punct('<') {
            let mut depth = 0isize;
            while i < end {
                if self.toks[i].is_punct('<') {
                    depth += 1;
                } else if self.toks[i].is_punct('>') && !(i > 0 && self.toks[i - 1].is_punct('-')) {
                    depth -= 1;
                    if depth == 0 {
                        i += 1;
                        break;
                    }
                }
                i += 1;
            }
        }
        if i >= end || !self.toks[i].is_punct('(') {
            return Vec::new();
        }
        let close = {
            let mut depth = 0isize;
            let mut c = i;
            while c < end {
                if self.toks[c].is_punct('(') {
                    depth += 1;
                } else if self.toks[c].is_punct(')') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                c += 1;
            }
            c.min(end.saturating_sub(1))
        };
        let mut params = Vec::new();
        let mut seg_start = i + 1;
        let mut depth = 0isize;
        let mut angle = 0isize;
        let mut j = i + 1;
        while j <= close {
            let boundary = j == close || (depth == 0 && angle <= 0 && self.toks[j].is_punct(','));
            if boundary {
                if let Some(p) = self.param_of(seg_start, j) {
                    params.push(p);
                }
                seg_start = j + 1;
            } else {
                match &self.toks[j].kind {
                    TokKind::Punct('(') | TokKind::Punct('[') | TokKind::Punct('{') => depth += 1,
                    TokKind::Punct(')') | TokKind::Punct(']') | TokKind::Punct('}') => depth -= 1,
                    TokKind::Punct('<') => angle += 1,
                    TokKind::Punct('>') if !(j > 0 && self.toks[j - 1].is_punct('-')) => angle -= 1,
                    _ => {}
                }
            }
            j += 1;
        }
        params
    }

    /// One parameter segment `[lo, hi)`: name (first identifier after
    /// stripping `&`, lifetimes, `mut`) and the token range after the `:`.
    fn param_of(&self, lo: usize, hi: usize) -> Option<(String, (usize, usize))> {
        let mut name = None;
        let mut k = lo;
        while k < hi {
            match &self.toks[k].kind {
                TokKind::Ident(s) if s != "mut" => {
                    name = Some(s.clone());
                    break;
                }
                _ => k += 1,
            }
        }
        let name = name?;
        // Type range: after the first `:` at depth 0 that is not `::`.
        let mut ty = (hi, hi);
        let mut d = 0isize;
        let mut m = k;
        while m < hi {
            match &self.toks[m].kind {
                TokKind::Punct('(') | TokKind::Punct('[') | TokKind::Punct('<') => d += 1,
                TokKind::Punct(')') | TokKind::Punct(']') => d -= 1,
                TokKind::Punct('>') if !(m > 0 && self.toks[m - 1].is_punct('-')) => d -= 1,
                TokKind::Punct(':') if d == 0 => {
                    let double = self.toks.get(m + 1).is_some_and(|t| t.is_punct(':'))
                        || (m > 0 && self.toks[m - 1].is_punct(':'));
                    if !double {
                        ty = (m + 1, hi);
                        break;
                    }
                }
                _ => {}
            }
            m += 1;
        }
        Some((name, ty))
    }

    /// The body token ranges of `Fn` items strictly nested inside item `f`
    /// (used to attribute call sites to the innermost function only).
    pub fn nested_fn_bodies(&self, f: usize) -> Vec<(usize, usize)> {
        let Some((lo, hi)) = self.items[f].body else { return Vec::new() };
        self.items
            .iter()
            .enumerate()
            .filter(|&(i, it)| {
                i != f
                    && it.kind == ItemKind::Fn
                    && it.span.tok_start >= lo
                    && it.span.tok_end <= hi
            })
            .filter_map(|(_, it)| it.body.map(|(b0, b1)| (it.span.tok_start, b1.max(b0))))
            .collect()
    }
}

/// Attributes pending before the next item.
#[derive(Clone, Copy, Debug, Default)]
struct PendingAttrs {
    /// `#[test]` (or `#[…::test]`, e.g. `tokio::test`).
    test: bool,
    /// `#[cfg(test)]` / `#[cfg(all(test, …))]`.
    cfg_test: bool,
}

/// Parses the item skeleton out of a token stream.
pub fn parse(path: &str, toks: &[Tok]) -> ParsedFile {
    let mut p = Parser { toks, items: Vec::new() };
    p.walk(0, toks.len(), false, None, None, None);
    ParsedFile { path: path.to_string(), toks: toks.to_vec(), items: p.items }
}

/// Convenience: lex then [`parse`].
pub fn parse_source(path: &str, src: &str) -> ParsedFile {
    let (toks, _) = crate::lexer::lex(src);
    let items = {
        let mut p = Parser { toks: &toks, items: Vec::new() };
        p.walk(0, toks.len(), false, None, None, None);
        p.items
    };
    ParsedFile { path: path.to_string(), toks, items }
}

/// The enclosing-impl context handed down while walking an impl body.
#[derive(Clone, Debug)]
struct ImplCtx {
    type_name: String,
    trait_name: Option<String>,
}

struct Parser<'a> {
    toks: &'a [Tok],
    items: Vec<Item>,
}

impl Parser<'_> {
    /// Walks tokens in `[start, end)` at one nesting level, collecting
    /// items. `in_test` is inherited test-ness; `impl_ctx` the enclosing
    /// impl block; `parent_fn` the innermost enclosing function item.
    fn walk(
        &mut self,
        start: usize,
        end: usize,
        in_test: bool,
        impl_ctx: Option<&ImplCtx>,
        parent_fn: Option<usize>,
        _parent_mod: Option<&str>,
    ) {
        let mut i = start;
        let mut attrs = PendingAttrs::default();
        while i < end {
            match &self.toks[i].kind {
                TokKind::Punct('#') => {
                    // `#[…]` outer attribute or `#![…]` inner attribute.
                    let inner = i + 1 < end && self.toks[i + 1].is_punct('!');
                    let open = i + if inner { 2 } else { 1 };
                    if open < end && self.toks[open].is_punct('[') {
                        let close = self.match_delim(open, end, '[', ']');
                        if !inner {
                            let idents: Vec<&str> =
                                self.toks[open + 1..close].iter().filter_map(Tok::ident).collect();
                            if idents.first() == Some(&"cfg") && idents.contains(&"test") {
                                attrs.cfg_test = true;
                            } else if idents.contains(&"test") {
                                attrs.test = true;
                            }
                        }
                        i = close + 1;
                    } else {
                        i += 1;
                    }
                }
                TokKind::Ident(kw) => match kw.as_str() {
                    "fn" => {
                        i = self.parse_fn(i, end, in_test, attrs, impl_ctx, parent_fn);
                        attrs = PendingAttrs::default();
                    }
                    "struct" | "enum" | "trait" | "union" => {
                        i = self.parse_type_item(i, end, in_test, attrs, parent_fn);
                        attrs = PendingAttrs::default();
                    }
                    "impl" => {
                        i = self.parse_impl(i, end, in_test, attrs, parent_fn);
                        attrs = PendingAttrs::default();
                    }
                    "mod" => {
                        i = self.parse_mod(i, end, in_test, attrs, impl_ctx, parent_fn);
                        attrs = PendingAttrs::default();
                    }
                    "use" => {
                        i = self.parse_use(i, end, in_test, parent_fn);
                        attrs = PendingAttrs::default();
                    }
                    // Statements and modifiers (`pub`, `async`, `unsafe`,
                    // `const`, `let`, …) carry no item boundary on their
                    // own; the next item keyword consumes pending attrs.
                    _ => i += 1,
                },
                _ => i += 1,
            }
        }
    }

    /// Index of the matching closing delimiter for the opener at `open`
    /// (returns `end - 1` when unbalanced).
    fn match_delim(&self, open: usize, end: usize, o: char, c: char) -> usize {
        let mut depth = 0usize;
        let mut i = open;
        while i < end {
            if self.toks[i].is_punct(o) {
                depth += 1;
            } else if self.toks[i].is_punct(c) {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            i += 1;
        }
        end.saturating_sub(1)
    }

    /// Finds the body `{` of an item starting at `i`: the first `{` at
    /// paren/bracket depth zero, unless a `;` arrives first (bodyless).
    fn find_body_or_semi(&self, i: usize, end: usize) -> (Option<usize>, usize) {
        let mut depth = 0isize;
        let mut j = i;
        while j < end {
            match &self.toks[j].kind {
                TokKind::Punct('(') | TokKind::Punct('[') => depth += 1,
                TokKind::Punct(')') | TokKind::Punct(']') => depth -= 1,
                TokKind::Punct('{') if depth == 0 => return (Some(j), j),
                TokKind::Punct(';') if depth == 0 => return (None, j),
                _ => {}
            }
            j += 1;
        }
        (None, end.saturating_sub(1))
    }

    fn parse_fn(
        &mut self,
        kw: usize,
        end: usize,
        in_test: bool,
        attrs: PendingAttrs,
        impl_ctx: Option<&ImplCtx>,
        parent_fn: Option<usize>,
    ) -> usize {
        let name = self.toks.get(kw + 1).and_then(Tok::ident).unwrap_or("").to_string();
        if name.is_empty() {
            return kw + 1; // `fn` in a type position (`Fn()` is a distinct ident)
        }
        let (body_open, stop) = self.find_body_or_semi(kw + 2, end);
        let is_test = in_test || attrs.test || attrs.cfg_test;
        let idx = self.items.len();
        match body_open {
            Some(open) => {
                let close = self.match_delim(open, end, '{', '}');
                self.items.push(Item {
                    kind: ItemKind::Fn,
                    name,
                    trait_name: impl_ctx.and_then(|c| c.trait_name.clone()),
                    self_type: impl_ctx.map(|c| c.type_name.clone()),
                    is_test,
                    span: self.span(kw, close + 1),
                    body: Some((open + 1, close)),
                    parent_fn,
                });
                // Test files love local fakes: walk the body for nested
                // `struct`/`impl`/`fn` items, attributed to this fn.
                self.walk(open + 1, close, is_test, None, Some(idx), None);
                close + 1
            }
            None => {
                self.items.push(Item {
                    kind: ItemKind::Fn,
                    name,
                    trait_name: impl_ctx.and_then(|c| c.trait_name.clone()),
                    self_type: impl_ctx.map(|c| c.type_name.clone()),
                    is_test,
                    span: self.span(kw, stop + 1),
                    body: None,
                    parent_fn,
                });
                stop + 1
            }
        }
    }

    fn parse_type_item(
        &mut self,
        kw: usize,
        end: usize,
        in_test: bool,
        attrs: PendingAttrs,
        parent_fn: Option<usize>,
    ) -> usize {
        let kind = match self.toks[kw].ident() {
            Some("struct") => ItemKind::Struct,
            Some("enum") => ItemKind::Enum,
            Some("trait") => ItemKind::Trait,
            _ => ItemKind::Struct, // `union`: close enough for the skeleton
        };
        let name = self.toks.get(kw + 1).and_then(Tok::ident).unwrap_or("").to_string();
        if name.is_empty() {
            return kw + 1;
        }
        let is_test = in_test || attrs.test || attrs.cfg_test;
        let (body_open, stop) = self.find_body_or_semi(kw + 2, end);
        match body_open {
            Some(open) => {
                let close = self.match_delim(open, end, '{', '}');
                let idx = self.items.len();
                self.items.push(Item {
                    kind,
                    name: name.clone(),
                    trait_name: None,
                    self_type: None,
                    is_test,
                    span: self.span(kw, close + 1),
                    body: Some((open + 1, close)),
                    parent_fn,
                });
                if kind == ItemKind::Trait {
                    // Default methods belong to the trait surface.
                    let ctx =
                        ImplCtx { type_name: name, trait_name: Some(self.items[idx].name.clone()) };
                    self.walk(open + 1, close, is_test, Some(&ctx), parent_fn, None);
                }
                close + 1
            }
            None => {
                // Tuple/unit struct: `struct X(…);` / `struct X;`.
                self.items.push(Item {
                    kind,
                    name,
                    trait_name: None,
                    self_type: None,
                    is_test,
                    span: self.span(kw, stop + 1),
                    body: None,
                    parent_fn,
                });
                stop + 1
            }
        }
    }

    fn parse_impl(
        &mut self,
        kw: usize,
        end: usize,
        in_test: bool,
        attrs: PendingAttrs,
        parent_fn: Option<usize>,
    ) -> usize {
        // `impl<generics>? TraitPath (for TypePath)? where…? { … }`
        let mut i = kw + 1;
        // Skip the generic parameter list, counting `<`/`>` but not the
        // `>` of `->` (bounds like `F: Fn() -> T` appear in generics).
        if i < end && self.toks[i].is_punct('<') {
            let mut depth = 0isize;
            while i < end {
                if self.toks[i].is_punct('<') {
                    depth += 1;
                } else if self.toks[i].is_punct('>') && !(i > 0 && self.toks[i - 1].is_punct('-')) {
                    depth -= 1;
                    if depth == 0 {
                        i += 1;
                        break;
                    }
                }
                i += 1;
            }
        }
        // First path: the trait if `for` follows, else the self type.
        let (first, after_first) = self.parse_type_head(i, end);
        let mut trait_name = None;
        let mut type_name = first;
        let mut j = after_first;
        if j < end && self.toks[j].is_ident("for") {
            let (second, after_second) = self.parse_type_head(j + 1, end);
            trait_name = Some(type_name);
            type_name = second;
            j = after_second;
        }
        let (body_open, stop) = self.find_body_or_semi(j, end);
        let Some(open) = body_open else { return stop + 1 };
        let close = self.match_delim(open, end, '{', '}');
        let is_test = in_test || attrs.test || attrs.cfg_test;
        self.items.push(Item {
            kind: ItemKind::Impl,
            name: type_name.clone(),
            trait_name: trait_name.clone(),
            self_type: None,
            is_test,
            span: self.span(kw, close + 1),
            body: Some((open + 1, close)),
            parent_fn,
        });
        let ctx = ImplCtx { type_name, trait_name };
        self.walk(open + 1, close, is_test, Some(&ctx), parent_fn, None);
        close + 1
    }

    /// Parses a type path head: returns the significant name (the last
    /// path segment before any generic arguments) and the index just past
    /// the whole type (generics skipped).
    fn parse_type_head(&self, start: usize, end: usize) -> (String, usize) {
        let mut name = String::new();
        let mut i = start;
        // Leading `&`, `dyn`, lifetimes arrive as idents/puncts to skip.
        while i < end {
            match &self.toks[i].kind {
                TokKind::Ident(s) => {
                    if s == "for" || s == "where" {
                        break;
                    }
                    if s != "dyn" {
                        name = s.clone();
                    }
                    i += 1;
                }
                TokKind::Punct(':') | TokKind::Punct('&') | TokKind::Punct('\'') => i += 1,
                TokKind::Punct('<') => {
                    // Generic arguments: skip balanced.
                    let mut depth = 0isize;
                    while i < end {
                        if self.toks[i].is_punct('<') {
                            depth += 1;
                        } else if self.toks[i].is_punct('>')
                            && !(i > 0 && self.toks[i - 1].is_punct('-'))
                        {
                            depth -= 1;
                            if depth == 0 {
                                i += 1;
                                break;
                            }
                        }
                        i += 1;
                    }
                    // A path can continue after generics (`Foo<T>::Bar`).
                    if !(i + 1 < end && self.toks[i].is_punct(':')) {
                        break;
                    }
                }
                _ => break,
            }
        }
        (name, i)
    }

    fn parse_mod(
        &mut self,
        kw: usize,
        end: usize,
        in_test: bool,
        attrs: PendingAttrs,
        impl_ctx: Option<&ImplCtx>,
        parent_fn: Option<usize>,
    ) -> usize {
        let name = self.toks.get(kw + 1).and_then(Tok::ident).unwrap_or("").to_string();
        if name.is_empty() {
            return kw + 1;
        }
        let is_test = in_test || attrs.test || attrs.cfg_test;
        match self.toks.get(kw + 2) {
            Some(t) if t.is_punct('{') => {
                let close = self.match_delim(kw + 2, end, '{', '}');
                self.items.push(Item {
                    kind: ItemKind::Mod,
                    name,
                    trait_name: None,
                    self_type: None,
                    is_test,
                    span: self.span(kw, close + 1),
                    body: Some((kw + 3, close)),
                    parent_fn,
                });
                self.walk(kw + 3, close, is_test, impl_ctx, parent_fn, None);
                close + 1
            }
            _ => {
                // `mod name;` — an out-of-line module; the file walker
                // visits its source separately.
                self.items.push(Item {
                    kind: ItemKind::Mod,
                    name,
                    trait_name: None,
                    self_type: None,
                    is_test,
                    span: self.span(kw, (kw + 3).min(end)),
                    body: None,
                    parent_fn,
                });
                kw + 3
            }
        }
    }

    fn parse_use(
        &mut self,
        kw: usize,
        end: usize,
        in_test: bool,
        parent_fn: Option<usize>,
    ) -> usize {
        let mut last = String::new();
        let mut i = kw + 1;
        while i < end && !self.toks[i].is_punct(';') {
            if let Some(s) = self.toks[i].ident() {
                last = s.to_string();
            }
            i += 1;
        }
        self.items.push(Item {
            kind: ItemKind::Use,
            name: last,
            trait_name: None,
            self_type: None,
            is_test: in_test,
            span: self.span(kw, (i + 1).min(end)),
            body: None,
            parent_fn,
        });
        i + 1
    }

    fn span(&self, tok_start: usize, tok_end: usize) -> Span {
        let line_start = self.toks.get(tok_start).map_or(1, |t| t.line);
        let line_end =
            self.toks.get(tok_end.saturating_sub(1).max(tok_start)).map_or(line_start, |t| t.line);
        Span { line_start, line_end, tok_start, tok_end }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fns(p: &ParsedFile) -> Vec<&Item> {
        p.items.iter().filter(|i| i.kind == ItemKind::Fn).collect()
    }

    #[test]
    fn fn_items_carry_name_span_and_body() {
        let src = "fn alpha() { let x = 1; }\nfn beta(a: u32) -> u32 { a }\n";
        let p = parse_source("x.rs", src);
        let f = fns(&p);
        assert_eq!(f.len(), 2);
        assert_eq!(f[0].name, "alpha");
        assert_eq!((f[0].span.line_start, f[0].span.line_end), (1, 1));
        assert_eq!(f[1].name, "beta");
        assert_eq!(f[1].span.line_start, 2);
        assert!(f[0].body.is_some());
    }

    #[test]
    fn cfg_test_modules_taint_everything_inside() {
        let src = r#"
fn prod() {}
#[cfg(test)]
mod tests {
    fn helper() {}
    #[test]
    fn case() { struct Fake; impl Fake { fn poke(&self) {} } }
}
"#;
        let p = parse_source("x.rs", src);
        let by_name = |n: &str| p.items.iter().find(|i| i.name == n).unwrap();
        assert!(!by_name("prod").is_test);
        assert!(by_name("helper").is_test);
        assert!(by_name("case").is_test);
        assert!(by_name("poke").is_test, "items inside test fn bodies are test code");
        assert!(by_name("Fake").is_test);
    }

    #[test]
    fn impl_blocks_bind_trait_and_type_names() {
        let src = r#"
impl Widget { fn inherent(&self) {} }
impl<R: Clone> BlackBox for Metered<R> { fn top_k(&self) {} }
impl ca_recsys::FallibleBlackBox for DownThenUp { fn try_top_k(&mut self) {} }
"#;
        let p = parse_source("x.rs", src);
        let by_name = |n: &str| p.items.iter().find(|i| i.name == n).unwrap();
        assert_eq!(by_name("inherent").self_type.as_deref(), Some("Widget"));
        assert_eq!(by_name("inherent").trait_name, None);
        assert_eq!(by_name("top_k").self_type.as_deref(), Some("Metered"));
        assert_eq!(by_name("top_k").trait_name.as_deref(), Some("BlackBox"));
        assert_eq!(by_name("try_top_k").trait_name.as_deref(), Some("FallibleBlackBox"));
        assert_eq!(by_name("try_top_k").self_type.as_deref(), Some("DownThenUp"));
    }

    #[test]
    fn trait_default_methods_belong_to_the_trait_surface() {
        let src = "trait BlackBox { fn top_k(&self); fn batch(&self) { self.top_k() } }";
        let p = parse_source("x.rs", src);
        let batch = p.items.iter().find(|i| i.name == "batch").unwrap();
        assert_eq!(batch.trait_name.as_deref(), Some("BlackBox"));
        let sig = p.items.iter().find(|i| i.name == "top_k").unwrap();
        assert!(sig.body.is_none(), "signature-only trait methods have no body");
    }

    #[test]
    fn fn_params_recover_names_and_hash_typed_annotations() {
        let src = "fn f(&mut self, seed: u64, counts: &HashMap<u32, f32>, (a, b): (u8, u8)) {}";
        let p = parse_source("x.rs", src);
        let f = p.fns().next().unwrap();
        let (has_self, names) = p.fn_params(f);
        assert!(has_self);
        assert_eq!(names, vec!["seed", "counts", "a"]);
        let hashy: Vec<String> = p
            .fn_params_with_types(f)
            .into_iter()
            .filter(|(_, (lo, hi))| p.toks[*lo..*hi].iter().any(|t| t.is_ident("HashMap")))
            .map(|(n, _)| n)
            .collect();
        assert_eq!(hashy, vec!["counts"]);
    }

    #[test]
    fn nested_generics_do_not_derail_the_body_finder() {
        let src = "fn f<T: Iterator<Item = Vec<Map<u8, Vec<u8>>>>>(x: T) -> Vec<Vec<u8>> { g() }\nfn g() {}";
        let p = parse_source("x.rs", src);
        let f = fns(&p);
        assert_eq!(f.len(), 2);
        assert_eq!(f[0].name, "f");
        assert_eq!((f[0].span.line_start, f[0].span.line_end), (1, 1));
        assert_eq!(f[1].name, "g");
        assert_eq!(f[1].span.line_start, 2);
    }

    #[test]
    fn raw_strings_and_raw_idents_keep_spans_accurate() {
        // The multi-line raw string contains `fn` and unbalanced braces;
        // neither may start an item or derail the brace matcher. Raw
        // identifiers lex as their bare name, so `r#fn` is a real item.
        let src = "fn first() {\n    let q = r#\"fn fake() { { {\"#;\n    let _ = q;\n}\nfn r#match() { r#match_helper() }\nfn r#match_helper() {}\n";
        let p = parse_source("x.rs", src);
        let f = fns(&p);
        assert_eq!(
            f.iter().map(|i| i.name.as_str()).collect::<Vec<_>>(),
            ["first", "match", "match_helper"]
        );
        assert_eq!((f[0].span.line_start, f[0].span.line_end), (1, 4));
        assert_eq!((f[1].span.line_start, f[1].span.line_end), (5, 5));
        assert_eq!((f[2].span.line_start, f[2].span.line_end), (6, 6));
    }
}
