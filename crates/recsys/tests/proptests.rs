//! Property-based tests for the data model and ranking metrics.

use ca_recsys::metrics::{hit_ratio, ndcg, MetricAccumulator};
use ca_recsys::{split_dataset, Dataset, DatasetBuilder, ItemId, UserId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The pre-CSR dedup algorithm, verbatim: walk the profile in order and
/// keep each item on first sight via an O(n²) `contains` scan. The arena
/// builder's sort-index dedup must reproduce this order exactly.
fn legacy_contains_dedup(n_items: usize, profile: &[u32]) -> Vec<ItemId> {
    let mut kept: Vec<ItemId> = Vec::new();
    for &v in profile {
        let v = ItemId(v % n_items as u32);
        if !kept.contains(&v) {
            kept.push(v);
        }
    }
    kept
}

fn build_dataset(n_items: usize, profiles: &[Vec<u32>]) -> Dataset {
    let mut b = DatasetBuilder::new(n_items);
    for p in profiles {
        let items: Vec<ItemId> = p.iter().map(|&v| ItemId(v % n_items as u32)).collect();
        b.user(&items);
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn metrics_are_bounded_and_consistent(rank in 0usize..200, k in 1usize..50) {
        let hr = hit_ratio(rank, k);
        let nd = ndcg(rank, k);
        prop_assert!((0.0..=1.0).contains(&hr));
        prop_assert!((0.0..=1.0).contains(&nd));
        prop_assert!(nd <= hr + 1e-7, "NDCG {nd} > HR {hr}");
        // Exactly one of hit/miss.
        prop_assert_eq!(hr == 1.0, rank < k);
    }

    #[test]
    fn metrics_monotone_in_k(rank in 0usize..100, k in 1usize..40) {
        prop_assert!(hit_ratio(rank, k + 1) >= hit_ratio(rank, k));
        prop_assert!(ndcg(rank, k + 1) >= ndcg(rank, k));
    }

    #[test]
    fn accumulator_mean_is_between_extremes(
        ranks in prop::collection::vec(0usize..60, 1..50),
    ) {
        let mut acc = MetricAccumulator::new(&[20]);
        for &r in &ranks {
            acc.push(r);
        }
        let hr = acc.hr(20);
        let best = ranks.iter().map(|&r| hit_ratio(r, 20)).fold(0.0f32, f32::max);
        let worst = ranks.iter().map(|&r| hit_ratio(r, 20)).fold(1.0f32, f32::min);
        prop_assert!(hr >= worst - 1e-6 && hr <= best + 1e-6);
        prop_assert_eq!(acc.count(), ranks.len());
    }

    #[test]
    fn dataset_roundtrip_consistency(
        profiles in prop::collection::vec(
            prop::collection::vec(0u32..40, 1..15),
            1..25,
        ),
    ) {
        let ds = build_dataset(40, &profiles);
        prop_assert!(ds.check_consistency().is_ok());
        // Inverted index agrees with forward profiles.
        for u in ds.users() {
            for &v in ds.profile(u) {
                prop_assert!(ds.item_profile(v).contains(&u));
            }
        }
    }

    #[test]
    fn split_conserves_interactions(
        profiles in prop::collection::vec(
            prop::collection::vec(0u32..30, 1..12),
            2..20,
        ),
        frac in 0.05f64..0.4,
        seed in 0u64..500,
    ) {
        let ds = build_dataset(30, &profiles);
        let mut rng = StdRng::seed_from_u64(seed);
        let split = split_dataset(&ds, frac, &mut rng);
        let total =
            split.train.n_interactions() + split.validation.len() + split.test.len();
        prop_assert_eq!(total, ds.n_interactions());
        // No user lost everything.
        for u in split.train.users() {
            prop_assert!(!split.train.profile(u).is_empty());
        }
        // Held-out pairs really existed.
        for h in split.validation.iter().chain(split.test.iter()) {
            prop_assert!(ds.contains(h.user, h.item));
        }
    }

    #[test]
    fn dedup_matches_the_legacy_contains_scan(
        profile in prop::collection::vec(0u32..60, 0..80),
        injected in prop::collection::vec(0u32..60, 0..80),
    ) {
        // Builder path and injection path both run the sort-index dedup;
        // each must keep first occurrences in original order, like the old
        // quadratic scan did.
        let mut b = DatasetBuilder::new(60);
        let items: Vec<ItemId> = profile.iter().map(|&v| ItemId(v % 60)).collect();
        b.user(&items);
        let mut ds = b.build();
        prop_assert_eq!(ds.profile(UserId(0)), &legacy_contains_dedup(60, &profile)[..]);

        let items: Vec<ItemId> = injected.iter().map(|&v| ItemId(v % 60)).collect();
        let uid = ds.add_user(&items);
        prop_assert_eq!(ds.profile(uid), &legacy_contains_dedup(60, &injected)[..]);
        // The sorted companion run holds the same items, ascending.
        let mut sorted = ds.profile(uid).to_vec();
        sorted.sort_by_key(|v| v.0);
        prop_assert_eq!(ds.sorted_profile(uid), &sorted[..]);
    }

    #[test]
    fn injection_preserves_consistency(
        profiles in prop::collection::vec(
            prop::collection::vec(0u32..25, 1..10),
            1..10,
        ),
        injected in prop::collection::vec(0u32..25, 1..10),
    ) {
        let mut ds = build_dataset(25, &profiles);
        let before_users = ds.n_users();
        let items: Vec<ItemId> = injected.iter().map(|&v| ItemId(v)).collect();
        let uid = ds.add_user(&items);
        prop_assert_eq!(uid.idx(), before_users);
        prop_assert!(ds.check_consistency().is_ok());
    }
}
