//! Ranking metrics: HR@K and NDCG@K.
//!
//! Both operate on the *rank* of a single relevant item among a candidate
//! list (0-based: rank 0 = top of the list), matching the paper's protocol
//! where exactly one test item is ranked against 100 sampled negatives.

/// Hit ratio: 1 if the relevant item's 0-based `rank` is inside the top `k`.
#[inline]
pub fn hit_ratio(rank: usize, k: usize) -> f32 {
    if rank < k {
        1.0
    } else {
        0.0
    }
}

/// NDCG for a single relevant item: `1 / log2(rank + 2)` if inside the top
/// `k`, else 0. (The ideal DCG for one relevant item is 1, so DCG = NDCG.)
#[inline]
pub fn ndcg(rank: usize, k: usize) -> f32 {
    if rank < k {
        1.0 / ((rank + 2) as f32).log2()
    } else {
        0.0
    }
}

/// Accumulates HR@K / NDCG@K over many (user, item) evaluations for a fixed
/// set of cutoffs.
#[derive(Clone, Debug)]
pub struct MetricAccumulator {
    ks: Vec<usize>,
    hr_sums: Vec<f64>,
    ndcg_sums: Vec<f64>,
    n: usize,
}

impl MetricAccumulator {
    /// Accumulator for the given cutoffs (e.g. `[20, 10, 5]` as in Table 2).
    pub fn new(ks: &[usize]) -> Self {
        Self { ks: ks.to_vec(), hr_sums: vec![0.0; ks.len()], ndcg_sums: vec![0.0; ks.len()], n: 0 }
    }

    /// Feeds one observed rank.
    pub fn push(&mut self, rank: usize) {
        for (i, &k) in self.ks.iter().enumerate() {
            self.hr_sums[i] += hit_ratio(rank, k) as f64;
            self.ndcg_sums[i] += ndcg(rank, k) as f64;
        }
        self.n += 1;
    }

    /// Number of observations.
    pub fn count(&self) -> usize {
        self.n
    }

    /// Mean HR@k for a cutoff that was registered at construction.
    ///
    /// # Panics
    /// Panics if `k` was not registered.
    pub fn hr(&self, k: usize) -> f32 {
        let i = self.k_index(k);
        if self.n == 0 {
            0.0
        } else {
            (self.hr_sums[i] / self.n as f64) as f32
        }
    }

    /// Mean NDCG@k.
    pub fn ndcg(&self, k: usize) -> f32 {
        let i = self.k_index(k);
        if self.n == 0 {
            0.0
        } else {
            (self.ndcg_sums[i] / self.n as f64) as f32
        }
    }

    /// Merges another accumulator (must share cutoffs) into this one.
    pub fn merge(&mut self, other: &MetricAccumulator) {
        assert_eq!(self.ks, other.ks, "cannot merge accumulators with different cutoffs");
        for i in 0..self.ks.len() {
            self.hr_sums[i] += other.hr_sums[i];
            self.ndcg_sums[i] += other.ndcg_sums[i];
        }
        self.n += other.n;
    }

    fn k_index(&self, k: usize) -> usize {
        self.ks
            .iter()
            .position(|&x| x == k)
            .unwrap_or_else(|| panic!("cutoff {k} not registered (have {:?})", self.ks))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_ratio_boundary() {
        assert_eq!(hit_ratio(0, 1), 1.0);
        assert_eq!(hit_ratio(1, 1), 0.0);
        assert_eq!(hit_ratio(9, 10), 1.0);
        assert_eq!(hit_ratio(10, 10), 0.0);
    }

    #[test]
    fn ndcg_known_values() {
        assert!((ndcg(0, 10) - 1.0).abs() < 1e-6); // 1/log2(2)
        assert!((ndcg(1, 10) - 1.0 / 3.0f32.log2()).abs() < 1e-6);
        assert_eq!(ndcg(10, 10), 0.0);
    }

    #[test]
    fn ndcg_never_exceeds_hit_ratio() {
        for rank in 0..30 {
            for k in [1, 5, 10, 20] {
                assert!(ndcg(rank, k) <= hit_ratio(rank, k) + 1e-7);
            }
        }
    }

    #[test]
    fn metrics_monotone_in_k() {
        for rank in 0..25 {
            assert!(hit_ratio(rank, 20) >= hit_ratio(rank, 10));
            assert!(ndcg(rank, 20) >= ndcg(rank, 10));
        }
    }

    #[test]
    fn accumulator_averages() {
        let mut acc = MetricAccumulator::new(&[20, 10, 5]);
        acc.push(0); // hit at every k
        acc.push(7); // hit at 20, 10, miss at 5
        acc.push(50); // miss everywhere
        assert_eq!(acc.count(), 3);
        assert!((acc.hr(20) - 2.0 / 3.0).abs() < 1e-6);
        assert!((acc.hr(10) - 2.0 / 3.0).abs() < 1e-6);
        assert!((acc.hr(5) - 1.0 / 3.0).abs() < 1e-6);
        assert!(acc.ndcg(5) <= acc.ndcg(10));
    }

    #[test]
    fn accumulator_merge_equals_combined_stream() {
        let mut a = MetricAccumulator::new(&[10]);
        let mut b = MetricAccumulator::new(&[10]);
        let mut all = MetricAccumulator::new(&[10]);
        for r in [0, 3, 15] {
            a.push(r);
            all.push(r);
        }
        for r in [1, 40] {
            b.push(r);
            all.push(r);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.hr(10) - all.hr(10)).abs() < 1e-6);
        assert!((a.ndcg(10) - all.ndcg(10)).abs() < 1e-6);
    }

    #[test]
    fn empty_accumulator_is_zero() {
        let acc = MetricAccumulator::new(&[10]);
        assert_eq!(acc.hr(10), 0.0);
        assert_eq!(acc.ndcg(10), 0.0);
    }

    #[test]
    #[should_panic(expected = "not registered")]
    fn unknown_cutoff_panics() {
        let acc = MetricAccumulator::new(&[10]);
        let _ = acc.hr(5);
    }
}
