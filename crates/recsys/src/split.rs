//! 80/10/10 interaction split (§5.1.3).
//!
//! The split is *per interaction*, uniformly at random, as in the paper:
//! "we randomly split the target domain datasets, where we have 80% as a
//! training set …, 10% as a validation set …, and 10% as the test set."
//! Held-out interactions are dropped from the training profiles but the
//! user's remaining sequence order is preserved.

use crate::dataset::{Dataset, DatasetBuilder};
use crate::ids::{ItemId, UserId};
use rand::Rng;

/// One held-out `(user, item)` pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HeldOut {
    /// The user whose interaction was held out.
    pub user: UserId,
    /// The held-out item.
    pub item: ItemId,
}

/// Result of [`split_dataset`].
#[derive(Clone, Debug)]
pub struct Split {
    /// Training dataset (same user/item id space as the input).
    pub train: Dataset,
    /// Validation pairs.
    pub validation: Vec<HeldOut>,
    /// Test pairs.
    pub test: Vec<HeldOut>,
}

/// Splits interactions 1−2·`holdout_frac` / `holdout_frac` / `holdout_frac`
/// into train/validation/test (the paper uses `holdout_frac = 0.1`).
///
/// Every user keeps at least one training interaction: a user whose profile
/// would become empty has its first interaction forced into train. This
/// mirrors common practice and keeps the (inductive) recommender able to
/// represent every user.
pub fn split_dataset(ds: &Dataset, holdout_frac: f64, rng: &mut impl Rng) -> Split {
    assert!(
        (0.0..0.5).contains(&holdout_frac),
        "holdout fraction {holdout_frac} must be in [0, 0.5)"
    );
    // Build through `DatasetBuilder` so the training set gets a frozen
    // inverted index over *all* of its users (the empty-then-append path
    // would leave every user in the injection tail).
    let mut train = DatasetBuilder::new(ds.n_items());
    train.reserve(ds.n_interactions());
    let mut validation = Vec::new();
    let mut test = Vec::new();

    let mut kept: Vec<ItemId> = Vec::new();
    for u in ds.users() {
        kept.clear();
        for &v in ds.profile(u) {
            let r: f64 = rng.gen();
            if r < holdout_frac && !kept.is_empty() {
                validation.push(HeldOut { user: u, item: v });
            } else if r < 2.0 * holdout_frac && !kept.is_empty() {
                test.push(HeldOut { user: u, item: v });
            } else {
                kept.push(v);
            }
        }
        let new_id = train.user(&kept);
        debug_assert_eq!(new_id, u, "split must preserve user ids");
    }
    Split { train: train.build(), validation, test }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy(n_users: usize, len: usize, n_items: usize) -> Dataset {
        let mut b = DatasetBuilder::new(n_items);
        for u in 0..n_users {
            let profile: Vec<ItemId> =
                (0..len).map(|i| ItemId(((u * 7 + i * 3) % n_items) as u32)).collect();
            b.user(&profile);
        }
        b.build()
    }

    #[test]
    fn split_preserves_user_ids_and_total_interactions() {
        let ds = toy(50, 20, 40);
        let mut rng = StdRng::seed_from_u64(1);
        let s = split_dataset(&ds, 0.1, &mut rng);
        assert_eq!(s.train.n_users(), ds.n_users());
        // Duplicate items within a profile are deduped at build time, so
        // compare against the deduped total.
        let total = s.train.n_interactions() + s.validation.len() + s.test.len();
        assert_eq!(total, ds.n_interactions());
    }

    #[test]
    fn split_fractions_are_approximately_right() {
        let ds = toy(200, 30, 500);
        let mut rng = StdRng::seed_from_u64(2);
        let s = split_dataset(&ds, 0.1, &mut rng);
        let total = ds.n_interactions() as f64;
        let val_frac = s.validation.len() as f64 / total;
        let test_frac = s.test.len() as f64 / total;
        assert!((val_frac - 0.1).abs() < 0.02, "val {val_frac}");
        assert!((test_frac - 0.1).abs() < 0.02, "test {test_frac}");
    }

    #[test]
    fn every_user_keeps_at_least_one_interaction() {
        let ds = toy(100, 2, 10); // short profiles stress the guarantee
        let mut rng = StdRng::seed_from_u64(3);
        let s = split_dataset(&ds, 0.4, &mut rng);
        for u in s.train.users() {
            assert!(!s.train.profile(u).is_empty(), "user {u} lost all interactions");
        }
    }

    #[test]
    fn heldout_pairs_come_from_original_profiles() {
        let ds = toy(30, 10, 20);
        let mut rng = StdRng::seed_from_u64(4);
        let s = split_dataset(&ds, 0.15, &mut rng);
        for h in s.validation.iter().chain(s.test.iter()) {
            assert!(ds.contains(h.user, h.item));
        }
    }

    #[test]
    fn split_is_deterministic_per_seed() {
        let ds = toy(40, 10, 30);
        let a = split_dataset(&ds, 0.1, &mut StdRng::seed_from_u64(7));
        let b = split_dataset(&ds, 0.1, &mut StdRng::seed_from_u64(7));
        assert_eq!(a.test, b.test);
        assert_eq!(a.validation, b.validation);
    }

    #[test]
    #[should_panic(expected = "must be in")]
    fn rejects_bad_fraction() {
        let ds = toy(5, 5, 5);
        let _ = split_dataset(&ds, 0.6, &mut StdRng::seed_from_u64(0));
    }
}
