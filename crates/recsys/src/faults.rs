//! Fault modeling for an *unreliable* deployed platform.
//!
//! The paper's threat model (§3, §4.5) puts the attacker behind a narrow
//! query/inject interface with "a limited number of queries (or
//! interactions)". A real deployed target goes further: it rate-limits
//! bursts, times out under load, truncates result lists, suspends accounts
//! it finds suspicious, and sometimes shadow-bans injected profiles so they
//! silently stop counting. This module gives the repository a deterministic
//! model of all of that:
//!
//! - [`RecError`] — the typed failure vocabulary of the platform;
//! - [`FaultConfig`] — which faults fire and how often;
//! - [`FaultyRecommender`] — a wrapper injecting faults into any
//!   [`FallibleBlackBox`] according to a
//!   schedule driven by a seeded [`SplitMix64`] and a *logical clock* — no
//!   wall-clock anywhere, so every chaos run is bit-for-bit reproducible.

use crate::blackbox::FallibleBlackBox;
use crate::ids::{ItemId, UserId};
use std::collections::BTreeSet;
use std::fmt;

/// Account ids handed out for shadow-banned injections live above this
/// bound so they can never collide with ids assigned by the real platform.
const GHOST_BASE: u32 = 1 << 31;

/// Why a platform interaction failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RecError {
    /// The caller exceeded the platform's burst quota; retry after the
    /// given number of logical ticks.
    RateLimited {
        /// Ticks until the current rate-limit window rolls over.
        retry_after: u64,
    },
    /// The request timed out; nothing happened server-side.
    Timeout,
    /// The platform answered, but returned fewer items than requested.
    /// The partial list is still genuine data — resilient callers use it.
    TruncatedList {
        /// The truncated Top-k list (best first).
        items: Vec<ItemId>,
    },
    /// The account was suspended (pretend user flagged, or account
    /// creation refused). Queries through it will keep failing; the
    /// attacker must establish a replacement.
    AccountSuspended,
    /// The platform is down; retry later.
    ServiceUnavailable,
    /// The platform answered in degraded mode *instead of stalling*: the
    /// shard responsible for this request is down, restarting, or stalled
    /// and its supervisor shed the call. Retry after the given number of
    /// logical ticks — the shard's estimated time back to healthy.
    Degraded {
        /// Ticks until the responsible shard is expected back.
        retry_after: u64,
    },
}

impl fmt::Display for RecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecError::RateLimited { retry_after } => {
                write!(f, "rate limited (retry after {retry_after} ticks)")
            }
            RecError::Timeout => write!(f, "request timed out"),
            RecError::TruncatedList { items } => {
                write!(f, "result list truncated to {} items", items.len())
            }
            RecError::AccountSuspended => write!(f, "account suspended"),
            RecError::ServiceUnavailable => write!(f, "service unavailable"),
            RecError::Degraded { retry_after } => {
                write!(f, "degraded service (shard back in ~{retry_after} ticks)")
            }
        }
    }
}

impl std::error::Error for RecError {}

impl RecError {
    /// Whether retrying the same call can ever succeed. Suspensions are not
    /// retryable on the same account — the account is gone; re-establish it
    /// instead.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            RecError::RateLimited { .. }
                | RecError::Timeout
                | RecError::ServiceUnavailable
                | RecError::Degraded { .. }
        )
    }
}

/// Burst rate limiting: at most `max_calls` platform calls per `window`
/// logical ticks.
#[derive(Clone, Copy, Debug)]
pub struct RateLimit {
    /// Window length in logical ticks.
    pub window: u64,
    /// Calls allowed per window.
    pub max_calls: u32,
}

/// Which faults the platform injects and how often.
///
/// `timeout_prob + unavailable_prob + truncate_prob` (queries) and
/// `timeout_prob + unavailable_prob + reject_inject_prob + shadow_ban_prob`
/// (injections) are each drawn from a *single* uniform roll per call, so
/// they must sum to at most 1.
#[derive(Clone, Debug)]
pub struct FaultConfig {
    /// Seed of the fault schedule. Same seed + same config + same call
    /// sequence ⇒ identical fault sequence.
    pub seed: u64,
    /// Probability a call times out.
    pub timeout_prob: f64,
    /// Probability a call hits a platform outage.
    pub unavailable_prob: f64,
    /// Probability a query returns a truncated list.
    pub truncate_prob: f64,
    /// Fraction of the requested `k` kept when truncating (in `(0, 1)`).
    pub truncate_keep: f64,
    /// Probability a *successful* query gets the queried account suspended
    /// (the platform's anomaly screening noticing the account).
    pub suspend_prob: f64,
    /// Probability account creation is refused outright.
    pub reject_inject_prob: f64,
    /// Probability an injection is shadow-banned: it "succeeds" (an account
    /// id comes back) but the profile never reaches the model.
    pub shadow_ban_prob: f64,
    /// Burst rate limiting, if any.
    pub rate_limit: Option<RateLimit>,
}

impl Default for FaultConfig {
    /// A transparent platform: no faults at all.
    fn default() -> Self {
        Self {
            seed: 0,
            timeout_prob: 0.0,
            unavailable_prob: 0.0,
            truncate_prob: 0.0,
            truncate_keep: 0.5,
            suspend_prob: 0.0,
            reject_inject_prob: 0.0,
            shadow_ban_prob: 0.0,
            rate_limit: None,
        }
    }
}

impl FaultConfig {
    /// A hostile-but-survivable platform with ≥ 20% combined per-call fault
    /// rate — the chaos-test preset.
    pub fn chaos(seed: u64) -> Self {
        Self {
            seed,
            timeout_prob: 0.08,
            unavailable_prob: 0.05,
            truncate_prob: 0.05,
            truncate_keep: 0.6,
            suspend_prob: 0.02,
            reject_inject_prob: 0.04,
            shadow_ban_prob: 0.03,
            rate_limit: Some(RateLimit { window: 64, max_calls: 48 }),
        }
    }

    /// Combined probability that a query call fails on the first roll
    /// (excluding rate limiting and suspensions, which are stateful).
    pub fn query_fault_rate(&self) -> f64 {
        self.timeout_prob + self.unavailable_prob + self.truncate_prob
    }

    /// Combined probability that an injection call misbehaves on the first
    /// roll.
    pub fn inject_fault_rate(&self) -> f64 {
        self.timeout_prob + self.unavailable_prob + self.reject_inject_prob + self.shadow_ban_prob
    }

    /// Sanity-checks the configuration.
    pub fn validate(&self) -> Result<(), String> {
        for (name, p) in [
            ("timeout_prob", self.timeout_prob),
            ("unavailable_prob", self.unavailable_prob),
            ("truncate_prob", self.truncate_prob),
            ("suspend_prob", self.suspend_prob),
            ("reject_inject_prob", self.reject_inject_prob),
            ("shadow_ban_prob", self.shadow_ban_prob),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{name} {p} outside [0, 1]"));
            }
        }
        if self.query_fault_rate() > 1.0 {
            return Err("query fault probabilities sum past 1".into());
        }
        if self.inject_fault_rate() > 1.0 {
            return Err("inject fault probabilities sum past 1".into());
        }
        if !(self.truncate_prob == 0.0 || (0.0 < self.truncate_keep && self.truncate_keep < 1.0)) {
            return Err(format!("truncate_keep {} outside (0, 1)", self.truncate_keep));
        }
        if let Some(rl) = self.rate_limit {
            if rl.window == 0 || rl.max_calls == 0 {
                return Err("rate limit window and max_calls must be positive".into());
            }
        }
        Ok(())
    }
}

/// Tiny deterministic PRNG (SplitMix64) used for fault schedules and retry
/// jitter. Public so attack-side code shares one deterministic source
/// instead of growing several ad-hoc ones.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeds the generator.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Per-kind fault counters, for assertions and reporting.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Calls rejected by the burst limiter.
    pub rate_limited: u64,
    /// Calls that timed out.
    pub timeouts: u64,
    /// Calls that hit an outage.
    pub unavailable: u64,
    /// Queries answered with a truncated list.
    pub truncated: u64,
    /// Queries refused because the account was (or became) suspended.
    pub suspensions: u64,
    /// Injections refused at account creation.
    pub rejected_injections: u64,
    /// Injections silently shadow-banned.
    pub shadow_bans: u64,
}

impl FaultStats {
    /// Total calls that returned an error (shadow bans excluded — they
    /// *look* like successes to the attacker).
    pub fn total_errors(&self) -> u64 {
        self.rate_limited
            + self.timeouts
            + self.unavailable
            + self.truncated
            + self.suspensions
            + self.rejected_injections
    }
}

/// Deterministic fault-injecting wrapper around any fallible platform.
///
/// Wraps a [`FallibleBlackBox`] (so wrappers stack, and any infallible
/// [`BlackBoxRecommender`](crate::BlackBoxRecommender) fits via the blanket
/// impl) and makes its calls fail according to a [`FaultConfig`]. All
/// randomness is *per-call-derived*: each call seeds a fresh [`SplitMix64`]
/// from `(config seed, logical clock, account id)`, so the fault outcome of
/// a call is a pure function of *when* it happens and *whose* account makes
/// it — never of how many draws other calls consumed. That is what makes
/// the batched query path ([`FallibleBlackBox::try_top_k_batch`]) see the
/// exact same fault sequence as per-user querying. Time is a logical clock
/// advanced once per call and by [`FallibleBlackBox::wait`]. Two instances
/// with the same seed, config, and call sequence produce the same fault
/// sequence.
pub struct FaultyRecommender<R> {
    inner: R,
    cfg: FaultConfig,
    clock: u64,
    window_start: u64,
    calls_in_window: u32,
    suspended: BTreeSet<UserId>,
    ghosts: BTreeSet<UserId>,
    n_ghosts: u32,
    calls: u64,
    stats: FaultStats,
}

impl<R: FallibleBlackBox> FaultyRecommender<R> {
    /// Wraps `inner` under the given fault model.
    ///
    /// # Panics
    /// Panics on an invalid [`FaultConfig`].
    pub fn new(inner: R, cfg: FaultConfig) -> Self {
        cfg.validate().unwrap_or_else(|e| panic!("invalid fault config: {e}"));
        Self {
            inner,
            cfg,
            clock: 0,
            window_start: 0,
            calls_in_window: 0,
            suspended: BTreeSet::new(),
            ghosts: BTreeSet::new(),
            n_ghosts: 0,
            calls: 0,
            stats: FaultStats::default(),
        }
    }

    /// The logical clock (ticks once per call, plus explicit waits).
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// Total calls attempted through this wrapper.
    pub fn calls(&self) -> u64 {
        self.calls
    }

    /// Per-kind fault counters.
    pub fn stats(&self) -> &FaultStats {
        &self.stats
    }

    /// Whether `user` is currently suspended.
    pub fn is_suspended(&self, user: UserId) -> bool {
        self.suspended.contains(&user)
    }

    /// Whether `user` is a shadow-banned ghost account (its profile never
    /// reached the model).
    pub fn is_ghost(&self, user: UserId) -> bool {
        self.ghosts.contains(&user)
    }

    /// Unwraps the inner platform (owner-side evaluation after the attack).
    pub fn into_inner(self) -> R {
        self.inner
    }

    /// Shared reference to the inner platform.
    pub fn inner(&self) -> &R {
        &self.inner
    }

    /// Advances the clock by one call tick and applies the burst limiter.
    fn admit_call(&mut self) -> Result<(), RecError> {
        self.clock += 1;
        self.calls += 1;
        let Some(rl) = self.cfg.rate_limit else { return Ok(()) };
        let ws = self.clock - (self.clock % rl.window);
        if ws != self.window_start {
            self.window_start = ws;
            self.calls_in_window = 0;
        }
        if self.calls_in_window >= rl.max_calls {
            self.stats.rate_limited += 1;
            let retry_after = self.window_start + rl.window - self.clock;
            return Err(RecError::RateLimited { retry_after: retry_after.max(1) });
        }
        self.calls_in_window += 1;
        Ok(())
    }

    /// The per-call fault RNG: a fresh [`SplitMix64`] keyed on the config
    /// seed, the logical tick of the call, and a per-account salt. One
    /// extra mixing round decorrelates adjacent `(tick, salt)` pairs.
    fn call_rng(&self, salt: u64) -> SplitMix64 {
        let mut mix = SplitMix64::new(
            self.cfg.seed
                ^ self.clock.wrapping_mul(0x9E3779B97F4A7C15)
                ^ salt.wrapping_mul(0xD1B54A32D192ED03),
        );
        SplitMix64::new(mix.next_u64())
    }

    /// The query-fault screen shared by the single and batched paths:
    /// suspension/ghost check, then one uniform roll across
    /// {timeout, unavailable, truncate}. `Ok(None)` means the call survived
    /// and needs a full inner list; `Ok(Some(keep))` means it survived but
    /// must be truncated to `keep` items; `Err` is the fault. The caller
    /// runs the suspension roll after the inner call using the same `rng`.
    fn screen_query(
        &mut self,
        user: UserId,
        k: usize,
        rng: &mut SplitMix64,
    ) -> Result<Option<usize>, RecError> {
        if self.suspended.contains(&user) || self.ghosts.contains(&user) {
            // Ghost accounts read as suspended: the platform pretends they
            // never existed. Their ids are unknown to the inner model, so
            // they must be intercepted before the call reaches it.
            self.stats.suspensions += 1;
            return Err(RecError::AccountSuspended);
        }
        let roll = rng.unit_f64();
        if roll < self.cfg.timeout_prob {
            self.stats.timeouts += 1;
            return Err(RecError::Timeout);
        }
        if roll < self.cfg.timeout_prob + self.cfg.unavailable_prob {
            self.stats.unavailable += 1;
            return Err(RecError::ServiceUnavailable);
        }
        if roll < self.cfg.query_fault_rate() {
            let keep = ((k as f64 * self.cfg.truncate_keep).ceil() as usize).max(1);
            return Ok(Some(keep));
        }
        Ok(None)
    }

    /// Finishes a surviving query: truncation bookkeeping and the
    /// post-response suspension roll, in the same draw order as
    /// [`FallibleBlackBox::try_top_k`].
    fn finish_query(
        &mut self,
        user: UserId,
        truncate_keep: Option<usize>,
        list: Vec<ItemId>,
        rng: &mut SplitMix64,
    ) -> Result<Vec<ItemId>, RecError> {
        if let Some(keep) = truncate_keep {
            let keep = keep.clamp(1, list.len().max(1));
            let items = list.into_iter().take(keep).collect();
            self.stats.truncated += 1;
            return Err(RecError::TruncatedList { items });
        }
        if self.cfg.suspend_prob > 0.0 && rng.unit_f64() < self.cfg.suspend_prob {
            // The screening pipeline flags the account as the response is
            // served; the caller sees the suspension, not the list.
            self.suspended.insert(user);
            self.stats.suspensions += 1;
            return Err(RecError::AccountSuspended);
        }
        Ok(list)
    }

    /// One distinct-user run of a batched query: per-entry admit + screen
    /// in order, a single inner batch over the survivors, then per-entry
    /// finish in order. Because the users are distinct, no entry's finish
    /// can change another entry's screen outcome.
    fn batch_segment(
        &mut self,
        users: &[UserId],
        k: usize,
        out: &mut Vec<Result<Vec<ItemId>, RecError>>,
    ) {
        let base = out.len();
        out.resize_with(base + users.len(), || Err(RecError::Timeout));
        // (slot, user, per-call rng, pending truncation) for screen survivors.
        let mut live: Vec<(usize, UserId, SplitMix64, Option<usize>)> = Vec::new();
        for (i, &u) in users.iter().enumerate() {
            if let Err(e) = self.admit_call() {
                out[base + i] = Err(e);
                continue;
            }
            let mut rng = self.call_rng(u.0 as u64 + 1);
            match self.screen_query(u, k, &mut rng) {
                Err(e) => out[base + i] = Err(e),
                Ok(keep) => live.push((i, u, rng, keep)),
            }
        }
        let survivors: Vec<UserId> = live.iter().map(|&(_, u, _, _)| u).collect();
        let answers = self.inner.try_top_k_batch(&survivors, k);
        for ((i, u, mut rng, keep), ans) in live.into_iter().zip(answers) {
            out[base + i] = match ans {
                Err(e) => Err(e),
                Ok(list) => self.finish_query(u, keep, list, &mut rng),
            };
        }
    }
}

impl<R: FallibleBlackBox> FallibleBlackBox for FaultyRecommender<R> {
    /// Fault order per query (all draws from the per-call RNG, fixed
    /// order): rate limiter → suspension check → one uniform roll across
    /// {timeout, unavailable, truncate} → inner call → suspension roll.
    fn try_top_k(&mut self, user: UserId, k: usize) -> Result<Vec<ItemId>, RecError> {
        self.admit_call()?;
        let mut rng = self.call_rng(user.0 as u64 + 1);
        let truncate_keep = self.screen_query(user, k, &mut rng)?;
        let list = self.inner.try_top_k(user, k)?;
        self.finish_query(user, truncate_keep, list, &mut rng)
    }

    /// Batched queries draw the *same* per-entry fault sequence as the
    /// per-user loop (each entry is admitted on its own tick and screened
    /// with its own `(seed, tick, account)` RNG), but all entries that
    /// survive the screen are answered by a single inner batch call — on an
    /// engine-backed platform that is one scoring pass instead of `m`.
    ///
    /// A batch is split at repeated accounts: a suspension fired by one
    /// entry must be visible to a *later* entry for the same user (in the
    /// per-user loop it is), so each inner batch covers a maximal run of
    /// distinct users. Attack-loop batches — one entry per pretend user —
    /// keep the single scoring pass.
    fn try_top_k_batch(
        &mut self,
        users: &[UserId],
        k: usize,
    ) -> Vec<Result<Vec<ItemId>, RecError>> {
        let mut out = Vec::with_capacity(users.len());
        let mut start = 0;
        while start < users.len() {
            let mut seen = BTreeSet::new();
            let mut end = start;
            while end < users.len() && seen.insert(users[end]) {
                end += 1;
            }
            self.batch_segment(&users[start..end], k, &mut out);
            start = end;
        }
        out
    }

    /// Fault order per injection: rate limiter → one uniform roll across
    /// {timeout, unavailable, reject, shadow-ban} → inner call.
    fn try_inject_user(&mut self, profile: &[ItemId]) -> Result<UserId, RecError> {
        self.admit_call()?;
        let mut rng = self.call_rng(0);
        let roll = rng.unit_f64();
        if roll < self.cfg.timeout_prob {
            self.stats.timeouts += 1;
            return Err(RecError::Timeout);
        }
        if roll < self.cfg.timeout_prob + self.cfg.unavailable_prob {
            self.stats.unavailable += 1;
            return Err(RecError::ServiceUnavailable);
        }
        if roll < self.cfg.timeout_prob + self.cfg.unavailable_prob + self.cfg.reject_inject_prob {
            self.stats.rejected_injections += 1;
            return Err(RecError::AccountSuspended);
        }
        if roll < self.cfg.inject_fault_rate() {
            // Shadow ban: the attacker gets an account id back, but the
            // profile never reaches the model. Ghost ids live above
            // GHOST_BASE so they cannot collide with real platform ids.
            let id = UserId(GHOST_BASE + self.n_ghosts);
            self.n_ghosts += 1;
            self.ghosts.insert(id);
            self.stats.shadow_bans += 1;
            return Ok(id);
        }
        self.inner.try_inject_user(profile)
    }

    fn catalog_size(&self) -> usize {
        self.inner.catalog_size()
    }

    fn wait(&mut self, ticks: u64) {
        self.clock += ticks;
        self.inner.wait(ticks);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blackbox::BlackBoxRecommender;

    struct Fixed {
        n_items: usize,
        n_users: usize,
    }

    impl BlackBoxRecommender for Fixed {
        fn top_k(&self, _user: UserId, k: usize) -> Vec<ItemId> {
            (0..self.n_items as u32).take(k).map(ItemId).collect()
        }
        fn inject_user(&mut self, _profile: &[ItemId]) -> UserId {
            let id = UserId(self.n_users as u32);
            self.n_users += 1;
            id
        }
        fn catalog_size(&self) -> usize {
            self.n_items
        }
    }

    fn outcome_sig(r: &Result<Vec<ItemId>, RecError>) -> String {
        match r {
            Ok(v) => format!("ok:{}", v.len()),
            Err(e) => format!("err:{e}"),
        }
    }

    #[test]
    fn transparent_config_never_faults() {
        let mut f =
            FaultyRecommender::new(Fixed { n_items: 20, n_users: 0 }, FaultConfig::default());
        for i in 0..200 {
            assert!(f.try_top_k(UserId(0), 5).is_ok(), "call {i}");
            assert!(f.try_inject_user(&[ItemId(1)]).is_ok());
        }
        assert_eq!(f.stats().total_errors(), 0);
        assert_eq!(f.calls(), 400);
        assert_eq!(f.clock(), 400);
    }

    #[test]
    fn same_seed_same_fault_sequence() {
        let cfg = FaultConfig::chaos(42);
        let mut a = FaultyRecommender::new(Fixed { n_items: 20, n_users: 0 }, cfg.clone());
        let mut b = FaultyRecommender::new(Fixed { n_items: 20, n_users: 0 }, cfg);
        for _ in 0..500 {
            let ra = a.try_top_k(UserId(1), 10);
            let rb = b.try_top_k(UserId(1), 10);
            assert_eq!(outcome_sig(&ra), outcome_sig(&rb));
            let ia = a.try_inject_user(&[ItemId(3)]);
            let ib = b.try_inject_user(&[ItemId(3)]);
            assert_eq!(ia.is_ok(), ib.is_ok());
        }
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn rate_limit_fires_and_recovers_after_waiting() {
        let cfg = FaultConfig {
            rate_limit: Some(RateLimit { window: 10, max_calls: 3 }),
            ..FaultConfig::default()
        };
        let mut f = FaultyRecommender::new(Fixed { n_items: 5, n_users: 0 }, cfg);
        for _ in 0..3 {
            assert!(f.try_top_k(UserId(0), 2).is_ok());
        }
        let err = f.try_top_k(UserId(0), 2).unwrap_err();
        let RecError::RateLimited { retry_after } = err else {
            panic!("expected rate limit, got {err}");
        };
        f.wait(retry_after);
        assert!(f.try_top_k(UserId(0), 2).is_ok(), "fresh window after waiting");
    }

    #[test]
    fn suspended_accounts_stay_suspended() {
        let cfg = FaultConfig { suspend_prob: 1.0, ..FaultConfig::default() };
        let mut f = FaultyRecommender::new(Fixed { n_items: 5, n_users: 0 }, cfg);
        assert_eq!(f.try_top_k(UserId(7), 2), Err(RecError::AccountSuspended));
        assert!(f.is_suspended(UserId(7)));
        // Still suspended on the next call — and that path draws no roll.
        assert_eq!(f.try_top_k(UserId(7), 2), Err(RecError::AccountSuspended));
        assert_eq!(f.stats().suspensions, 2);
    }

    #[test]
    fn shadow_ban_returns_ghost_id_that_reads_suspended() {
        let cfg = FaultConfig { shadow_ban_prob: 1.0, ..FaultConfig::default() };
        let mut f = FaultyRecommender::new(Fixed { n_items: 5, n_users: 0 }, cfg);
        let ghost = f.try_inject_user(&[ItemId(0)]).expect("shadow ban looks like success");
        assert!(ghost.0 >= super::GHOST_BASE);
        assert!(f.is_ghost(ghost));
        // The model never saw the profile.
        assert_eq!(f.inner().n_users, 0);
        assert_eq!(f.try_top_k(ghost, 3), Err(RecError::AccountSuspended));
    }

    #[test]
    fn truncation_returns_partial_list() {
        let cfg = FaultConfig { truncate_prob: 1.0, truncate_keep: 0.5, ..FaultConfig::default() };
        let mut f = FaultyRecommender::new(Fixed { n_items: 20, n_users: 0 }, cfg);
        let err = f.try_top_k(UserId(0), 10).unwrap_err();
        let RecError::TruncatedList { items } = err else { panic!("expected truncation") };
        assert_eq!(items.len(), 5);
        assert_eq!(items[0], ItemId(0));
    }

    #[test]
    fn chaos_preset_is_hostile_but_valid() {
        let cfg = FaultConfig::chaos(1);
        assert!(cfg.validate().is_ok());
        assert!(cfg.query_fault_rate() + cfg.suspend_prob >= 0.18);
        assert!(cfg.inject_fault_rate() >= 0.18);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        assert!(FaultConfig { timeout_prob: 1.2, ..FaultConfig::default() }.validate().is_err());
        assert!(FaultConfig { timeout_prob: 0.6, unavailable_prob: 0.6, ..FaultConfig::default() }
            .validate()
            .is_err());
        assert!(FaultConfig { truncate_prob: 0.1, truncate_keep: 1.5, ..FaultConfig::default() }
            .validate()
            .is_err());
        assert!(FaultConfig {
            rate_limit: Some(RateLimit { window: 0, max_calls: 5 }),
            ..FaultConfig::default()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn batched_faults_match_the_per_user_loop() {
        let cfg = FaultConfig::chaos(7);
        let mut batched = FaultyRecommender::new(Fixed { n_items: 30, n_users: 0 }, cfg.clone());
        let mut looped = FaultyRecommender::new(Fixed { n_items: 30, n_users: 0 }, cfg);
        // `% 5` with chunks of 8 puts repeated accounts inside one batch:
        // a suspension fired mid-batch must reach the user's next entry.
        let users: Vec<UserId> = (0..48u32).map(|u| UserId(u % 5)).collect();
        for chunk in users.chunks(8) {
            let rb = batched.try_top_k_batch(chunk, 10);
            let rl: Vec<_> = chunk.iter().map(|&u| looped.try_top_k(u, 10)).collect();
            assert_eq!(rb, rl, "batched and per-user fault sequences diverged");
        }
        assert_eq!(batched.clock(), looped.clock());
        assert_eq!(batched.stats(), looped.stats());
    }

    #[test]
    fn degraded_is_retryable_and_displays() {
        let e = RecError::Degraded { retry_after: 12 };
        assert!(e.is_retryable());
        assert!(format!("{e}").contains("12 ticks"));
    }

    #[test]
    fn faulty_wrappers_stack() {
        // Chaos on top of chaos still satisfies the interface.
        let inner =
            FaultyRecommender::new(Fixed { n_items: 10, n_users: 0 }, FaultConfig::default());
        let mut outer = FaultyRecommender::new(inner, FaultConfig::default());
        assert!(outer.try_top_k(UserId(0), 3).is_ok());
        assert_eq!(outer.catalog_size(), 10);
        // Waits propagate to the inner clock.
        outer.wait(5);
        assert_eq!(outer.clock(), 6);
        assert_eq!(outer.inner().clock(), 6);
    }
}
