//! The shared scoring engine: one ranking implementation for every target
//! model.
//!
//! The hot path of the whole reproduction is "score every catalog item for
//! a batch of users, take Top-k" — the Eq. 1 reward re-queries all pretend
//! users after every injection step. Every recommender used to reimplement
//! that loop per user; here it is factored into two pieces:
//!
//! - [`ScoringEngine`] — the model-specific part: fill a `users × items`
//!   score matrix (typically one GEMM against a representation table) and
//!   answer which items a user has already seen;
//! - [`top_k_from_scores`] — the model-independent part: seen-item masking
//!   and partial Top-k selection (`select_nth_unstable`, `O(n + k log k)`)
//!   with a deterministic tie-break (score descending, then item id
//!   ascending), so batched and sequential paths agree element-for-element.
//!
//! [`batch_top_k`] runs the engine sequentially over a thread-local
//! [`Scratch`] pool (steady-state scoring allocates nothing);
//! [`par_batch_top_k`] splits the user batch across `std::thread::scope`
//! workers; [`auto_batch_top_k`] picks between them by problem size.
//!
//! None of this changes attacker-visible semantics: ranking order (modulo
//! previously unspecified tie order), seen-item exclusion, and query
//! metering are identical to the per-user loops it replaces.

use crate::ids::{ItemId, UserId};
use ca_tensor::{Matrix, Scratch};
use std::cell::RefCell;
use std::cmp::Ordering;

/// Batch-scoring interface implemented by every target model.
///
/// `score_batch` must write **every** cell of `out` (a zeroed
/// `users.len() × catalog_len()` matrix): `out[(i, v)]` is the score of
/// `users[i]` for item `v`. Scores must not be NaN.
pub trait ScoringEngine {
    /// Number of items in the catalog (the width of a score row).
    fn catalog_len(&self) -> usize;

    /// Fills `out[(i, v)]` with the score of `users[i]` for item `v`.
    fn score_batch(&self, users: &[UserId], out: &mut Matrix);

    /// Whether `user` already interacted with `item` (such items are
    /// excluded from rankings, as a deployed system would).
    fn is_seen(&self, user: UserId, item: ItemId) -> bool;
}

/// Deterministic ranking order: score descending, then item id ascending.
#[inline]
fn rank_cmp(a: &(f32, u32), b: &(f32, u32)) -> Ordering {
    b.0.total_cmp(&a.0).then(a.1.cmp(&b.1))
}

/// The best `k` items of one score row, excluding items for which
/// `is_seen` returns true. Partial-select (`select_nth_unstable`) keeps
/// this `O(n + k log k)` instead of a full sort's `O(n log n)`; ties break
/// deterministically by ascending item id.
pub fn top_k_from_scores(
    scores: &[f32],
    k: usize,
    mut is_seen: impl FnMut(ItemId) -> bool,
) -> Vec<ItemId> {
    let mut scored: Vec<(f32, u32)> = Vec::with_capacity(scores.len());
    for (v, &s) in scores.iter().enumerate() {
        if !is_seen(ItemId(v as u32)) {
            scored.push((s, v as u32));
        }
    }
    let k = k.min(scored.len());
    if k == 0 {
        return Vec::new();
    }
    scored.select_nth_unstable_by(k - 1, rank_cmp);
    scored.truncate(k);
    scored.sort_unstable_by(rank_cmp);
    scored.into_iter().map(|(_, v)| ItemId(v)).collect()
}

thread_local! {
    /// Per-thread buffer pool shared by every engine invocation on this
    /// thread, so repeated scoring rounds reuse one score-matrix allocation.
    static ENGINE_SCRATCH: RefCell<Scratch> = RefCell::new(Scratch::new());
}

/// Sequential batched Top-k: one `score_batch` call, then shared ranking
/// per row. Score matrices come from an explicit [`Scratch`] pool.
pub fn batch_top_k_with<E: ScoringEngine + ?Sized>(
    engine: &E,
    users: &[UserId],
    k: usize,
    scratch: &mut Scratch,
    // ca-audit: allow(nested-vec) — k-sized per-query batch result, not dataset-scale state
) -> Vec<Vec<ItemId>> {
    let mut scores = scratch.matrix(users.len(), engine.catalog_len());
    engine.score_batch(users, &mut scores);
    let lists = users
        .iter()
        .enumerate()
        .map(|(i, &u)| top_k_from_scores(scores.row(i), k, |v| engine.is_seen(u, v)))
        .collect();
    scratch.recycle(scores);
    lists
}

/// Sequential batched Top-k over the calling thread's scratch pool.
pub fn batch_top_k<E: ScoringEngine + ?Sized>(
    engine: &E,
    users: &[UserId],
    k: usize,
    // ca-audit: allow(nested-vec) — k-sized per-query batch result, not dataset-scale state
) -> Vec<Vec<ItemId>> {
    ENGINE_SCRATCH.with(|s| batch_top_k_with(engine, users, k, &mut s.borrow_mut()))
}

/// Single-user Top-k through the engine (a batch of one).
pub fn single_top_k<E: ScoringEngine + ?Sized>(engine: &E, user: UserId, k: usize) -> Vec<ItemId> {
    batch_top_k(engine, &[user], k).pop().expect("one list per user")
}

/// Data-parallel batched Top-k: the user batch is split into `threads`
/// contiguous chunks, each scored through the deterministic `ca_par`
/// runtime (ordered output, no raw thread handling here). Result order
/// matches `users`, and every list equals the sequential path exactly —
/// the split is over users, whose scores are independent.
pub fn par_batch_top_k<E: ScoringEngine + Sync + ?Sized>(
    engine: &E,
    users: &[UserId],
    k: usize,
    threads: usize,
    // ca-audit: allow(nested-vec) — k-sized per-query batch result, not dataset-scale state
) -> Vec<Vec<ItemId>> {
    let threads = threads.max(1).min(users.len().max(1));
    if threads <= 1 {
        return batch_top_k(engine, users, k);
    }
    let chunk = users.len().div_ceil(threads);
    let chunks: Vec<&[UserId]> = users.chunks(chunk).collect();
    ca_par::map(&chunks, |_, chunk_users| batch_top_k(engine, chunk_users, k))
        .into_iter()
        .flatten()
        .collect()
}

/// Parallelize only past this many users…
const PAR_MIN_USERS: usize = 8;
/// …and this many score cells (`users × items`): below that, thread spawn
/// overhead beats the win.
const PAR_MIN_CELLS: usize = 1 << 18;

/// Batched Top-k with an automatic sequential/parallel decision based on
/// the score-matrix size. This is what recommenders route `top_k_batch`
/// through.
pub fn auto_batch_top_k<E: ScoringEngine + Sync + ?Sized>(
    engine: &E,
    users: &[UserId],
    k: usize,
    // ca-audit: allow(nested-vec) — k-sized per-query batch result, not dataset-scale state
) -> Vec<Vec<ItemId>> {
    let cells = users.len().saturating_mul(engine.catalog_len());
    if users.len() >= PAR_MIN_USERS && cells >= PAR_MIN_CELLS {
        // One process-wide knob (`CA_THREADS`, see `ca-par`) governs every
        // parallel stage of the pipeline, this one included.
        let threads = ca_par::threads().min(users.len());
        par_batch_top_k(engine, users, k, threads)
    } else {
        batch_top_k(engine, users, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy engine: `score(u, v) = base[v] - |u - v mod 7|`, user `u` has
    /// seen items `v ≡ u (mod 5)`.
    struct Toy {
        base: Vec<f32>,
    }

    impl Toy {
        fn new(n: usize) -> Self {
            Self { base: (0..n).map(|v| ((v * 37) % 19) as f32).collect() }
        }
        fn score(&self, u: UserId, v: usize) -> f32 {
            self.base[v] - ((u.0 as i64 - (v % 7) as i64).abs() as f32) * 0.25
        }
    }

    impl ScoringEngine for Toy {
        fn catalog_len(&self) -> usize {
            self.base.len()
        }
        fn score_batch(&self, users: &[UserId], out: &mut Matrix) {
            for (i, &u) in users.iter().enumerate() {
                for v in 0..self.base.len() {
                    out[(i, v)] = self.score(u, v);
                }
            }
        }
        fn is_seen(&self, user: UserId, item: ItemId) -> bool {
            item.0 % 5 == user.0 % 5
        }
    }

    #[test]
    fn top_k_from_scores_masks_and_sorts() {
        let scores = [1.0, 5.0, 3.0, 5.0, 2.0];
        let top = top_k_from_scores(&scores, 3, |v| v == ItemId(1));
        // Item 1 masked; 3 (5.0) beats 2 (3.0) beats 4 (2.0).
        assert_eq!(top, vec![ItemId(3), ItemId(2), ItemId(4)]);
    }

    #[test]
    fn ties_break_by_ascending_item_id() {
        let scores = [2.0; 6];
        let top = top_k_from_scores(&scores, 4, |_| false);
        assert_eq!(top, vec![ItemId(0), ItemId(1), ItemId(2), ItemId(3)]);
    }

    #[test]
    fn k_larger_than_unseen_catalog_is_clamped() {
        let scores = [1.0, 2.0, 3.0];
        let top = top_k_from_scores(&scores, 10, |v| v == ItemId(2));
        assert_eq!(top, vec![ItemId(1), ItemId(0)]);
        assert!(top_k_from_scores(&scores, 0, |_| false).is_empty());
    }

    #[test]
    fn batch_matches_single_user_queries() {
        let engine = Toy::new(57);
        let users: Vec<UserId> = (0..11u32).map(UserId).collect();
        let batched = batch_top_k(&engine, &users, 8);
        for (i, &u) in users.iter().enumerate() {
            assert_eq!(batched[i], single_top_k(&engine, u, 8), "user {u}");
        }
    }

    #[test]
    fn parallel_matches_sequential_in_order() {
        let engine = Toy::new(103);
        let users: Vec<UserId> = (0..23u32).map(UserId).collect();
        let seq = batch_top_k(&engine, &users, 6);
        for threads in [1, 2, 3, 8, 64] {
            assert_eq!(par_batch_top_k(&engine, &users, 6, threads), seq, "threads={threads}");
        }
        assert_eq!(auto_batch_top_k(&engine, &users, 6), seq);
    }

    #[test]
    fn empty_batch_yields_no_lists() {
        let engine = Toy::new(10);
        assert!(batch_top_k(&engine, &[], 3).is_empty());
        assert!(par_batch_top_k(&engine, &[], 3, 4).is_empty());
    }

    #[test]
    fn repeated_rounds_reuse_the_thread_local_pool() {
        let engine = Toy::new(64);
        let users: Vec<UserId> = (0..4u32).map(UserId).collect();
        // Warm the pool, then verify a second round leaves it warm too.
        let first = batch_top_k(&engine, &users, 5);
        let second = batch_top_k(&engine, &users, 5);
        assert_eq!(first, second);
        ENGINE_SCRATCH.with(|s| assert!(s.borrow().idle() >= 1));
    }
}
