//! The shared scoring engine: one ranking implementation for every target
//! model.
//!
//! The hot path of the whole reproduction is "score every catalog item for
//! a batch of users, take Top-k" — the Eq. 1 reward re-queries all pretend
//! users after every injection step. Every recommender used to reimplement
//! that loop per user; here it is factored into two pieces:
//!
//! - [`ScoringEngine`] — the model-specific part: fill a `users × items`
//!   score matrix (typically one GEMM against a representation table) and
//!   answer which items a user has already seen;
//! - [`top_k_from_scores`] — the model-independent part: seen-item masking
//!   and partial Top-k selection (`select_nth_unstable`, `O(n + k log k)`)
//!   with a deterministic tie-break (score descending, then item id
//!   ascending), so batched and sequential paths agree element-for-element.
//!
//! [`batch_top_k`] runs the engine sequentially over a thread-local
//! [`Scratch`] pool (steady-state scoring allocates nothing);
//! [`par_batch_top_k`] splits the user batch across `std::thread::scope`
//! workers; [`auto_batch_top_k`] picks between them by problem size.
//!
//! None of this changes attacker-visible semantics: ranking order (modulo
//! previously unspecified tie order), seen-item exclusion, and query
//! metering are identical to the per-user loops it replaces.

use crate::ids::{ItemId, UserId};
use ca_tensor::{Matrix, Scratch};
use std::cell::RefCell;
use std::cmp::Ordering;

/// Batch-scoring interface implemented by every target model.
///
/// `score_batch` must write **every** cell of `out` (a zeroed
/// `users.len() × catalog_len()` matrix): `out[(i, v)]` is the score of
/// `users[i]` for item `v`. Scores must not be NaN.
pub trait ScoringEngine {
    /// Number of items in the catalog (the width of a score row).
    fn catalog_len(&self) -> usize;

    /// Fills `out[(i, v)]` with the score of `users[i]` for item `v`.
    fn score_batch(&self, users: &[UserId], out: &mut Matrix);

    /// Whether `user` already interacted with `item` (such items are
    /// excluded from rankings, as a deployed system would).
    fn is_seen(&self, user: UserId, item: ItemId) -> bool;
}

/// Engines whose items live in a vector space: the contract approximate
/// retrieval indexes against.
///
/// An implementor exposes, besides full-catalog scoring, (a) a fixed-width
/// representation per item (what gets clustered into index cells), (b) a
/// query vector per user in the *same* space (inner product against item
/// representations must rank like the model score, at least coarsely — it
/// only steers which cells are probed), and (c) exact scoring of an
/// arbitrary candidate subset, **bitwise identical** to the corresponding
/// `score_batch` cells, so pruning the candidate set is the *only* source
/// of approximation. Engines without such a space (co-occurrence KNN,
/// popularity) simply don't implement this trait and always serve the
/// exact path.
pub trait EmbeddingEngine: ScoringEngine {
    /// Width of the item/query representation vectors.
    fn embedding_dim(&self) -> usize;

    /// Writes `item`'s representation into `out` (`embedding_dim` floats).
    fn item_embedding_into(&self, item: ItemId, out: &mut [f32]);

    /// Writes `user`'s query vector into `out` (`embedding_dim` floats).
    fn query_embedding_into(&self, user: UserId, out: &mut [f32]);

    /// Scores exactly the given candidate items for `user`:
    /// `out[i] = score(user, items[i])`, bitwise equal to what
    /// `score_batch` would put in those columns.
    fn score_items(&self, user: UserId, items: &[ItemId], out: &mut [f32]);
}

/// How a recommender answers Top-k queries.
///
/// `Exact` is the default full-catalog GEMM + partial-select path; `Ivf`
/// routes through a seeded inverted-file index (`ca-ann`) that scores only
/// the `nprobe` nearest of `nlist` cells — sublinear in the catalog, with
/// the exact path kept as the parity/recall oracle. Engines without item
/// embeddings (ItemKNN without a sketch, popularity) fall back to `Exact`
/// regardless of the knob.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum RetrievalMode {
    /// Score the full catalog (the parity/recall oracle).
    #[default]
    Exact,
    /// IVF approximate retrieval: `nlist` k-means cells, probe `nprobe`.
    Ivf {
        /// Number of index cells the catalog is partitioned into.
        nlist: usize,
        /// Number of nearest cells scored per query.
        nprobe: usize,
    },
}

/// Deterministic ranking order: score descending, then item id ascending.
#[inline]
pub(crate) fn rank_cmp(a: &(f32, u32), b: &(f32, u32)) -> Ordering {
    b.0.total_cmp(&a.0).then(a.1.cmp(&b.1))
}

/// Orders the best `k` candidates of `cand` into its prefix (score
/// descending, id ascending) and truncates to them. Partial-select
/// (`select_nth_unstable`) keeps this `O(n + k log k)`; the IVF path ranks
/// its probed candidates through this same function, so exact and
/// approximate retrieval share one tie-break.
pub fn select_top_k(cand: &mut Vec<(f32, u32)>, k: usize) {
    let k = k.min(cand.len());
    if k == 0 {
        cand.clear();
        return;
    }
    cand.select_nth_unstable_by(k - 1, rank_cmp);
    cand.truncate(k);
    cand.sort_unstable_by(rank_cmp);
}

/// [`top_k_from_scores`] with a caller-provided candidate buffer, so
/// steady-state ranking performs no allocation (the buffer comes from the
/// [`Scratch`] pair pool in the batched paths). The buffer is cleared on
/// entry and holds the ranked survivors on return.
pub fn top_k_from_scores_into(
    scores: &[f32],
    k: usize,
    mut is_seen: impl FnMut(ItemId) -> bool,
    cand: &mut Vec<(f32, u32)>,
) -> Vec<ItemId> {
    cand.clear();
    for (v, &s) in scores.iter().enumerate() {
        if !is_seen(ItemId(v as u32)) {
            cand.push((s, v as u32));
        }
    }
    select_top_k(cand, k);
    cand.iter().map(|&(_, v)| ItemId(v)).collect()
}

/// The best `k` items of one score row, excluding items for which
/// `is_seen` returns true. Ties break deterministically by ascending item
/// id. Allocating convenience wrapper over [`top_k_from_scores_into`].
pub fn top_k_from_scores(
    scores: &[f32],
    k: usize,
    is_seen: impl FnMut(ItemId) -> bool,
) -> Vec<ItemId> {
    let mut cand = Vec::with_capacity(scores.len());
    top_k_from_scores_into(scores, k, is_seen, &mut cand)
}

thread_local! {
    /// Per-thread buffer pool shared by every engine invocation on this
    /// thread, so repeated scoring rounds reuse one score-matrix allocation.
    static ENGINE_SCRATCH: RefCell<Scratch> = RefCell::new(Scratch::new());
}

/// Sequential batched Top-k: one `score_batch` call, then shared ranking
/// per row. Score matrices *and* the per-row candidate buffer come from an
/// explicit [`Scratch`] pool, so steady-state ranking allocates nothing
/// beyond the k-sized result lists.
pub fn batch_top_k_with<E: ScoringEngine + ?Sized>(
    engine: &E,
    users: &[UserId],
    k: usize,
    scratch: &mut Scratch,
    // ca-audit: allow(nested-vec) — k-sized per-query batch result, not dataset-scale state
) -> Vec<Vec<ItemId>> {
    let mut scores = scratch.matrix(users.len(), engine.catalog_len());
    engine.score_batch(users, &mut scores);
    let mut cand = scratch.take_pairs();
    let lists = users
        .iter()
        .enumerate()
        .map(|(i, &u)| {
            top_k_from_scores_into(scores.row(i), k, |v| engine.is_seen(u, v), &mut cand)
        })
        .collect();
    scratch.put_pairs(cand);
    scratch.recycle(scores);
    lists
}

/// Sequential batched Top-k over the calling thread's scratch pool.
pub fn batch_top_k<E: ScoringEngine + ?Sized>(
    engine: &E,
    users: &[UserId],
    k: usize,
    // ca-audit: allow(nested-vec) — k-sized per-query batch result, not dataset-scale state
) -> Vec<Vec<ItemId>> {
    ENGINE_SCRATCH.with(|s| batch_top_k_with(engine, users, k, &mut s.borrow_mut()))
}

/// Single-user Top-k through the engine (a batch of one).
pub fn single_top_k<E: ScoringEngine + ?Sized>(engine: &E, user: UserId, k: usize) -> Vec<ItemId> {
    batch_top_k(engine, &[user], k).pop().expect("one list per user")
}

/// The user-batch chunk grid: `ca_par::even_chunks`, so the thread knob
/// and the actual fan-out agree (`min(threads, users)` chunks, sizes
/// within one — the old `⌈n/t⌉` split could produce *fewer* chunks than
/// threads, e.g. 9 users at 4 threads → 3 chunks).
fn user_chunks(users: &[UserId], threads: usize) -> Vec<&[UserId]> {
    ca_par::even_chunks(users.len(), threads).into_iter().map(|r| &users[r]).collect()
}

/// Data-parallel batched Top-k: the user batch is split into `threads`
/// contiguous chunks on `ca_par`'s fixed even grid, each scored through
/// the deterministic `ca_par` runtime (ordered output, no raw thread
/// handling here). Result order matches `users`, and every list equals the
/// sequential path exactly — the split is over users, whose scores are
/// independent.
pub fn par_batch_top_k<E: ScoringEngine + Sync + ?Sized>(
    engine: &E,
    users: &[UserId],
    k: usize,
    threads: usize,
    // ca-audit: allow(nested-vec) — k-sized per-query batch result, not dataset-scale state
) -> Vec<Vec<ItemId>> {
    let threads = threads.max(1).min(users.len().max(1));
    if threads <= 1 {
        return batch_top_k(engine, users, k);
    }
    let chunks = user_chunks(users, threads);
    ca_par::map(&chunks, |_, chunk_users| batch_top_k(engine, chunk_users, k))
        .into_iter()
        .flatten()
        .collect()
}

/// Parallelize only past this many users…
const PAR_MIN_USERS: usize = 8;
/// …and this many score cells (`users × items`): below that, thread spawn
/// overhead beats the win.
const PAR_MIN_CELLS: usize = 1 << 18;

/// Batched Top-k with an automatic sequential/parallel decision based on
/// the score-matrix size. This is what recommenders route `top_k_batch`
/// through.
pub fn auto_batch_top_k<E: ScoringEngine + Sync + ?Sized>(
    engine: &E,
    users: &[UserId],
    k: usize,
    // ca-audit: allow(nested-vec) — k-sized per-query batch result, not dataset-scale state
) -> Vec<Vec<ItemId>> {
    let cells = users.len().saturating_mul(engine.catalog_len());
    if users.len() >= PAR_MIN_USERS && cells >= PAR_MIN_CELLS {
        // One process-wide knob (`CA_THREADS`, see `ca-par`) governs every
        // parallel stage of the pipeline, this one included.
        let threads = ca_par::threads().min(users.len());
        par_batch_top_k(engine, users, k, threads)
    } else {
        batch_top_k(engine, users, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy engine: `score(u, v) = base[v] - |u - v mod 7|`, user `u` has
    /// seen items `v ≡ u (mod 5)`.
    struct Toy {
        base: Vec<f32>,
    }

    impl Toy {
        fn new(n: usize) -> Self {
            Self { base: (0..n).map(|v| ((v * 37) % 19) as f32).collect() }
        }
        fn score(&self, u: UserId, v: usize) -> f32 {
            self.base[v] - ((u.0 as i64 - (v % 7) as i64).abs() as f32) * 0.25
        }
    }

    impl ScoringEngine for Toy {
        fn catalog_len(&self) -> usize {
            self.base.len()
        }
        fn score_batch(&self, users: &[UserId], out: &mut Matrix) {
            for (i, &u) in users.iter().enumerate() {
                for v in 0..self.base.len() {
                    out[(i, v)] = self.score(u, v);
                }
            }
        }
        fn is_seen(&self, user: UserId, item: ItemId) -> bool {
            item.0 % 5 == user.0 % 5
        }
    }

    #[test]
    fn top_k_from_scores_masks_and_sorts() {
        let scores = [1.0, 5.0, 3.0, 5.0, 2.0];
        let top = top_k_from_scores(&scores, 3, |v| v == ItemId(1));
        // Item 1 masked; 3 (5.0) beats 2 (3.0) beats 4 (2.0).
        assert_eq!(top, vec![ItemId(3), ItemId(2), ItemId(4)]);
    }

    #[test]
    fn ties_break_by_ascending_item_id() {
        let scores = [2.0; 6];
        let top = top_k_from_scores(&scores, 4, |_| false);
        assert_eq!(top, vec![ItemId(0), ItemId(1), ItemId(2), ItemId(3)]);
    }

    #[test]
    fn k_larger_than_unseen_catalog_is_clamped() {
        let scores = [1.0, 2.0, 3.0];
        let top = top_k_from_scores(&scores, 10, |v| v == ItemId(2));
        assert_eq!(top, vec![ItemId(1), ItemId(0)]);
        assert!(top_k_from_scores(&scores, 0, |_| false).is_empty());
    }

    #[test]
    fn batch_matches_single_user_queries() {
        let engine = Toy::new(57);
        let users: Vec<UserId> = (0..11u32).map(UserId).collect();
        let batched = batch_top_k(&engine, &users, 8);
        for (i, &u) in users.iter().enumerate() {
            assert_eq!(batched[i], single_top_k(&engine, u, 8), "user {u}");
        }
    }

    #[test]
    fn parallel_matches_sequential_in_order() {
        let engine = Toy::new(103);
        let users: Vec<UserId> = (0..23u32).map(UserId).collect();
        let seq = batch_top_k(&engine, &users, 6);
        for threads in [1, 2, 3, 8, 64] {
            assert_eq!(par_batch_top_k(&engine, &users, 6, threads), seq, "threads={threads}");
        }
        assert_eq!(auto_batch_top_k(&engine, &users, 6), seq);
    }

    #[test]
    fn empty_batch_yields_no_lists() {
        let engine = Toy::new(10);
        assert!(batch_top_k(&engine, &[], 3).is_empty());
        assert!(par_batch_top_k(&engine, &[], 3, 4).is_empty());
    }

    #[test]
    fn repeated_rounds_reuse_the_thread_local_pool() {
        let engine = Toy::new(64);
        let users: Vec<UserId> = (0..4u32).map(UserId).collect();
        // Warm the pool, then verify a second round leaves it warm too.
        let first = batch_top_k(&engine, &users, 5);
        let second = batch_top_k(&engine, &users, 5);
        assert_eq!(first, second);
        ENGINE_SCRATCH.with(|s| {
            assert!(s.borrow().idle() >= 1, "score matrix must return to the pool");
            assert!(s.borrow().idle_pairs() >= 1, "candidate buffer must return to the pool");
        });
    }

    #[test]
    fn buffered_ranking_matches_the_allocating_path() {
        let engine = Toy::new(91);
        let users: Vec<UserId> = (0..9u32).map(UserId).collect();
        let mut scores = Matrix::zeros(users.len(), engine.catalog_len());
        engine.score_batch(&users, &mut scores);
        let mut cand = Vec::new();
        for (i, &u) in users.iter().enumerate() {
            let is_seen = |v: ItemId| engine.is_seen(u, v);
            let buffered = top_k_from_scores_into(scores.row(i), 7, is_seen, &mut cand);
            let fresh = top_k_from_scores(scores.row(i), 7, is_seen);
            assert_eq!(buffered, fresh, "user {u}");
        }
    }

    #[test]
    fn chunk_grid_matches_thread_request() {
        // Regression: ⌈9/4⌉ = 3 chunking used to fan out to only 3 of the
        // 4 requested workers; the even grid must give exactly 4 chunks.
        let users: Vec<UserId> = (0..9u32).map(UserId).collect();
        let chunks = user_chunks(&users, 4);
        assert_eq!(chunks.len(), 4);
        let sizes: Vec<usize> = chunks.iter().map(|c| c.len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 9);
        assert!(sizes.iter().all(|&s| (2..=3).contains(&s)), "unbalanced {sizes:?}");
        // More threads than users: one chunk per user, no empties.
        assert_eq!(user_chunks(&users, 64).len(), 9);
        // And the parallel path still matches sequential on that shape.
        let engine = Toy::new(57);
        let seq = batch_top_k(&engine, &users, 5);
        assert_eq!(par_batch_top_k(&engine, &users, 5, 4), seq);
    }
}
