//! Recommender-system data model and evaluation protocol.
//!
//! This crate defines the vocabulary every other crate speaks:
//!
//! - [`UserId`] / [`ItemId`] newtypes;
//! - [`Dataset`] — the interaction matrix `Y` stored as *sequential user
//!   profiles* `P_u` (the paper's `v_1 → v_2 → …`) plus inverted *item
//!   profiles* `P_v` (the users who interacted with `v`);
//! - [`split`] — the 80/10/10 train/validation/test split of §5.1.3;
//! - [`metrics`] / [`eval`] — HR@K and NDCG@K under the paper's sampled
//!   ranking protocol ("randomly sample 100 items that the user did not
//!   interact with and then rank the test item among them", §5.1.2);
//! - [`blackbox::BlackBoxRecommender`] — the *only* interface the attacker
//!   is allowed to touch: inject a profile, query Top-k lists;
//! - [`blackbox::FallibleBlackBox`] / [`faults`] — the same surface on an
//!   *unreliable* platform: typed errors ([`RecError`]), plus a
//!   deterministic fault injector ([`FaultyRecommender`]) for chaos testing
//!   resilient attack loops;
//! - [`popularity`] — item-popularity deciles for the Figure 4 analysis.

pub mod blackbox;
pub mod dataset;
pub mod eval;
pub mod faults;
pub mod ids;
pub mod knn;
pub mod metrics;
pub mod popularity;
pub mod split;

pub use blackbox::{BlackBoxRecommender, FallibleBlackBox, MeteredFallible, MeteredRecommender};
pub use dataset::{Dataset, DatasetBuilder};
pub use eval::{RankingEval, Scorer};
pub use faults::{FaultConfig, FaultStats, FaultyRecommender, RateLimit, RecError, SplitMix64};
pub use ids::{ItemId, UserId};
pub use split::{split_dataset, HeldOut, Split};
