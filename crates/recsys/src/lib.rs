//! Recommender-system data model and evaluation protocol.
//!
//! This crate defines the vocabulary every other crate speaks:
//!
//! - [`UserId`] / [`ItemId`] newtypes;
//! - [`Dataset`] — the interaction matrix `Y` stored as *sequential user
//!   profiles* `P_u` (the paper's `v_1 → v_2 → …`) plus inverted *item
//!   profiles* `P_v` (the users who interacted with `v`);
//! - [`split`] — the 80/10/10 train/validation/test split of §5.1.3;
//! - [`metrics`] / [`eval`] — HR@K and NDCG@K under the paper's sampled
//!   ranking protocol ("randomly sample 100 items that the user did not
//!   interact with and then rank the test item among them", §5.1.2);
//! - [`blackbox::BlackBoxRecommender`] — the *only* interface the attacker
//!   is allowed to touch: inject a profile, query Top-k lists (one at a
//!   time or batched);
//! - [`engine`] — the shared batched scoring engine
//!   ([`engine::ScoringEngine`] + [`engine::top_k_from_scores`]): the one
//!   ranking implementation every target model routes through;
//! - [`blackbox::FallibleBlackBox`] / [`faults`] — the same surface on an
//!   *unreliable* platform: typed errors ([`RecError`]), plus a
//!   deterministic fault injector ([`FaultyRecommender`]) for chaos testing
//!   resilient attack loops;
//! - [`popularity`] — item-popularity deciles for the Figure 4 analysis.

#![forbid(unsafe_code)]

pub mod blackbox;
pub mod dataset;
pub mod engine;
pub mod eval;
pub mod faults;
pub mod ids;
pub mod knn;
pub mod metrics;
pub mod popularity;
pub mod split;

pub use blackbox::{BlackBoxRecommender, FallibleBlackBox, MeteredFallible, MeteredRecommender};
pub use dataset::{Dataset, DatasetBuilder};
pub use engine::{
    auto_batch_top_k, batch_top_k, batch_top_k_with, par_batch_top_k, select_top_k, single_top_k,
    top_k_from_scores, top_k_from_scores_into, EmbeddingEngine, RetrievalMode, ScoringEngine,
};
pub use eval::{RankingEval, Scorer};
pub use faults::{FaultConfig, FaultStats, FaultyRecommender, RateLimit, RecError, SplitMix64};
pub use ids::{ItemId, UserId};
pub use popularity::PopularityRecommender;
pub use split::{split_dataset, HeldOut, Split};
