//! The black-box attack surface (§3, §4.5).
//!
//! Under the paper's threat model the attacker can do exactly two things to
//! the target platform:
//!
//! 1. create a new account and perform interactions (= inject a profile);
//! 2. look at the Top-k recommendation list shown to an account it controls
//!    (= query).
//!
//! Everything else — model architecture, parameters, other users' data — is
//! hidden. Keeping this boundary as a trait means the attack code in
//! `copyattack-core` *cannot* cheat: it never sees model internals, only
//! this interface.
//!
//! Two flavors of the boundary exist:
//!
//! - [`BlackBoxRecommender`] — the *infallible* surface used by simulation
//!   targets that always answer (the original paper setting);
//! - [`FallibleBlackBox`] — the *deployed-platform* surface where every call
//!   can fail with a [`RecError`] (rate limits, timeouts, suspensions…).
//!   Every infallible recommender is automatically fallible through a
//!   blanket impl that never errors, so attack code written against
//!   `FallibleBlackBox` runs unchanged on both.

use crate::faults::RecError;
use crate::ids::{ItemId, UserId};
use std::cell::Cell;

/// Query-and-inject interface to a deployed recommender.
pub trait BlackBoxRecommender {
    /// The Top-k recommendation list for `user`, best first, excluding items
    /// the user already interacted with (as a deployed system would).
    fn top_k(&self, user: UserId, k: usize) -> Vec<ItemId>;

    /// Batched Top-k: one list per entry of `users`, in order — semantically
    /// `users.len()` independent queries issued together, which is how the
    /// attack loop measures its Eq. 1 reward over all pretend users at once.
    ///
    /// The default loops [`BlackBoxRecommender::top_k`] so external
    /// implementations keep compiling; models in this workspace override it
    /// to score the whole batch through the shared
    /// [`ScoringEngine`](crate::engine::ScoringEngine). Either way the
    /// result must equal the per-user loop element-for-element.
    // ca-audit: allow(nested-vec) — k-sized per-query batch result, not dataset-scale state
    fn top_k_batch(&self, users: &[UserId], k: usize) -> Vec<Vec<ItemId>> {
        users.iter().map(|&u| self.top_k(u, k)).collect()
    }

    /// Creates a new account whose profile is `profile` (in interaction
    /// order) and returns its id. The platform may refresh representations
    /// (fold-in) as part of registering the interactions.
    fn inject_user(&mut self, profile: &[ItemId]) -> UserId;

    /// Number of items in the platform's catalog (public knowledge: the
    /// attacker can browse the site).
    fn catalog_size(&self) -> usize;
}

/// The fallible attack surface of an *unreliable* deployed platform.
///
/// Mirrors [`BlackBoxRecommender`] but every interaction can fail with a
/// [`RecError`]. Resilient attack loops (retry policies, partial rewards,
/// account re-establishment) are written against this trait; simulation
/// targets get it for free via the blanket impl below.
pub trait FallibleBlackBox {
    /// Fallible Top-k query for `user`.
    fn try_top_k(&mut self, user: UserId, k: usize) -> Result<Vec<ItemId>, RecError>;

    /// Batched fallible Top-k: one outcome per entry of `users`, in order.
    /// Each entry fails independently — a rate-limited account does not
    /// poison its batch-mates — so callers can degrade failed entries to
    /// the per-user retry path. The default loops
    /// [`FallibleBlackBox::try_top_k`], preserving per-user fault draws on
    /// unreliable platforms.
    fn try_top_k_batch(
        &mut self,
        users: &[UserId],
        k: usize,
    ) -> Vec<Result<Vec<ItemId>, RecError>> {
        users.iter().map(|&u| self.try_top_k(u, k)).collect()
    }

    /// Fallible account creation with `profile`.
    fn try_inject_user(&mut self, profile: &[ItemId]) -> Result<UserId, RecError>;

    /// Number of items in the platform's catalog.
    fn catalog_size(&self) -> usize;

    /// Advances the platform's *logical clock* by `ticks` without issuing a
    /// call — how a retry policy "sleeps" through a backoff delay or a
    /// `retry_after` hint. Reliable platforms have no clock; the default is
    /// a no-op.
    fn wait(&mut self, ticks: u64) {
        let _ = ticks;
    }
}

/// Every infallible recommender is a fallible one that never fails. This is
/// what keeps the original simulation targets and their tests working after
/// the attacker-facing API moved to `Result`.
impl<T: BlackBoxRecommender> FallibleBlackBox for T {
    fn try_top_k(&mut self, user: UserId, k: usize) -> Result<Vec<ItemId>, RecError> {
        Ok(BlackBoxRecommender::top_k(self, user, k))
    }

    fn try_top_k_batch(
        &mut self,
        users: &[UserId],
        k: usize,
    ) -> Vec<Result<Vec<ItemId>, RecError>> {
        // One infallible batch query, so engine-backed recommenders answer
        // the whole batch with a single (possibly parallel) scoring pass.
        BlackBoxRecommender::top_k_batch(self, users, k).into_iter().map(Ok).collect()
    }

    fn try_inject_user(&mut self, profile: &[ItemId]) -> Result<UserId, RecError> {
        Ok(BlackBoxRecommender::inject_user(self, profile))
    }

    fn catalog_size(&self) -> usize {
        BlackBoxRecommender::catalog_size(self)
    }
}

/// Counts queries and injections so experiments can report attacker cost.
///
/// Wrap any recommender to enforce/observe the paper's limited-resource
/// setting ("limited number of queries (or interactions) allowed to the
/// target recommender system").
pub struct MeteredRecommender<R> {
    inner: R,
    // `top_k` takes `&self`, so the query counter lives in a `Cell`:
    // every path through the trait is metered, including read-only ones.
    queries: Cell<u64>,
    injections: u64,
}

impl<R> MeteredRecommender<R> {
    /// Wraps `inner` with zeroed counters.
    pub fn new(inner: R) -> Self {
        Self { inner, queries: Cell::new(0), injections: 0 }
    }

    /// Top-k queries issued so far.
    pub fn queries(&self) -> u64 {
        self.queries.get()
    }

    /// Profiles injected so far.
    pub fn injections(&self) -> u64 {
        self.injections
    }

    /// Unwraps the inner recommender.
    pub fn into_inner(self) -> R {
        self.inner
    }

    /// Shared reference to the inner recommender (for owner-side evaluation
    /// after the attack, not part of the attacker surface).
    pub fn inner(&self) -> &R {
        &self.inner
    }
}

impl<R: BlackBoxRecommender> BlackBoxRecommender for MeteredRecommender<R> {
    fn top_k(&self, user: UserId, k: usize) -> Vec<ItemId> {
        self.queries.set(self.queries.get() + 1);
        self.inner.top_k(user, k)
    }

    // ca-audit: allow(nested-vec) — k-sized per-query batch result, not dataset-scale state
    fn top_k_batch(&self, users: &[UserId], k: usize) -> Vec<Vec<ItemId>> {
        // A batch is users.len() queries, not one: batching is an execution
        // detail and must not discount attacker cost.
        self.queries.set(self.queries.get() + users.len() as u64);
        self.inner.top_k_batch(users, k)
    }

    fn inject_user(&mut self, profile: &[ItemId]) -> UserId {
        self.injections += 1;
        self.inner.inject_user(profile)
    }

    fn catalog_size(&self) -> usize {
        self.inner.catalog_size()
    }
}

impl<R: BlackBoxRecommender> MeteredRecommender<R> {
    /// Top-k query through `&mut self`. Kept for callers predating the
    /// interior-mutability counter; identical to [`BlackBoxRecommender::top_k`],
    /// which now meters every path.
    pub fn top_k_counted(&mut self, user: UserId, k: usize) -> Vec<ItemId> {
        BlackBoxRecommender::top_k(self, user, k)
    }
}

/// Attempt-level metering for the fallible surface.
///
/// Unlike [`MeteredRecommender`], this wrapper counts *attempts*: a query
/// that fails and is retried three times costs four metered queries — the
/// honest accounting of attacker cost against a flaky platform, where every
/// network call spends budget whether or not it succeeds.
pub struct MeteredFallible<R> {
    inner: R,
    query_attempts: u64,
    failed_queries: u64,
    inject_attempts: u64,
    failed_injections: u64,
}

impl<R> MeteredFallible<R> {
    /// Wraps `inner` with zeroed counters.
    pub fn new(inner: R) -> Self {
        Self {
            inner,
            query_attempts: 0,
            failed_queries: 0,
            inject_attempts: 0,
            failed_injections: 0,
        }
    }

    /// Top-k attempts so far (successful + failed).
    pub fn queries(&self) -> u64 {
        self.query_attempts
    }

    /// Top-k attempts that returned an error.
    pub fn failed_queries(&self) -> u64 {
        self.failed_queries
    }

    /// Injection attempts so far (successful + failed).
    pub fn inject_attempts(&self) -> u64 {
        self.inject_attempts
    }

    /// Injections that landed (attempts minus failures).
    pub fn injections(&self) -> u64 {
        self.inject_attempts - self.failed_injections
    }

    /// Injection attempts that returned an error.
    pub fn failed_injections(&self) -> u64 {
        self.failed_injections
    }

    /// Unwraps the inner platform.
    pub fn into_inner(self) -> R {
        self.inner
    }

    /// Shared reference to the inner platform (owner-side evaluation).
    pub fn inner(&self) -> &R {
        &self.inner
    }
}

impl<R: FallibleBlackBox> FallibleBlackBox for MeteredFallible<R> {
    fn try_top_k(&mut self, user: UserId, k: usize) -> Result<Vec<ItemId>, RecError> {
        self.query_attempts += 1;
        let r = self.inner.try_top_k(user, k);
        if r.is_err() {
            self.failed_queries += 1;
        }
        r
    }

    fn try_top_k_batch(
        &mut self,
        users: &[UserId],
        k: usize,
    ) -> Vec<Result<Vec<ItemId>, RecError>> {
        // One attempt per user in the batch, failures counted per entry.
        self.query_attempts += users.len() as u64;
        let rs = self.inner.try_top_k_batch(users, k);
        self.failed_queries += rs.iter().filter(|r| r.is_err()).count() as u64;
        rs
    }

    fn try_inject_user(&mut self, profile: &[ItemId]) -> Result<UserId, RecError> {
        self.inject_attempts += 1;
        let r = self.inner.try_inject_user(profile);
        if r.is_err() {
            self.failed_injections += 1;
        }
        r
    }

    fn catalog_size(&self) -> usize {
        self.inner.catalog_size()
    }

    fn wait(&mut self, ticks: u64) {
        self.inner.wait(ticks);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal fake: recommends the newest items, profile-agnostic.
    struct Newest {
        n_items: usize,
        n_users: usize,
    }

    impl BlackBoxRecommender for Newest {
        fn top_k(&self, _user: UserId, k: usize) -> Vec<ItemId> {
            (0..self.n_items as u32).rev().take(k).map(ItemId).collect()
        }
        fn inject_user(&mut self, _profile: &[ItemId]) -> UserId {
            let id = UserId(self.n_users as u32);
            self.n_users += 1;
            id
        }
        fn catalog_size(&self) -> usize {
            self.n_items
        }
    }

    #[test]
    fn metered_counts_injections_and_queries() {
        let mut m = MeteredRecommender::new(Newest { n_items: 10, n_users: 0 });
        assert_eq!(m.queries(), 0);
        let _ = m.top_k_counted(UserId(0), 3);
        let _ = m.top_k_counted(UserId(0), 3);
        let _ = m.inject_user(&[ItemId(1)]);
        assert_eq!(m.queries(), 2);
        assert_eq!(m.injections(), 1);
        assert_eq!(BlackBoxRecommender::catalog_size(&m), 10);
    }

    /// Regression test: the `&self` trait passthrough used to skip the
    /// query counter, silently underreporting attacker cost.
    #[test]
    fn shared_reference_top_k_is_metered() {
        let m = MeteredRecommender::new(Newest { n_items: 10, n_users: 0 });
        let _ = m.top_k(UserId(0), 3);
        let _ = m.top_k(UserId(1), 5);
        assert_eq!(m.queries(), 2, "read-only top_k path must be metered");

        // And generic code that only knows the trait is metered too.
        fn query_thrice<R: BlackBoxRecommender>(r: &R) {
            for _ in 0..3 {
                let _ = r.top_k(UserId(0), 1);
            }
        }
        query_thrice(&m);
        assert_eq!(m.queries(), 5);
    }

    /// Regression test: `top_k_batch` must cost one query per user in the
    /// batch, not one per call — otherwise the batched reward path would
    /// silently discount attacker cost 50×.
    #[test]
    fn batched_top_k_is_metered_per_user() {
        let m = MeteredRecommender::new(Newest { n_items: 10, n_users: 0 });
        let lists = m.top_k_batch(&[UserId(0), UserId(1), UserId(2)], 4);
        assert_eq!(lists.len(), 3);
        assert_eq!(m.queries(), 3, "a 3-user batch is 3 queries");
        let _ = m.top_k(UserId(0), 4);
        let _ = m.top_k_batch(&[], 4);
        assert_eq!(m.queries(), 4, "an empty batch costs nothing");
        // The batch answers exactly what per-user queries would.
        for (i, list) in lists.iter().enumerate() {
            assert_eq!(*list, m.top_k(UserId(i as u32), 4));
        }
    }

    #[test]
    fn fallible_batch_is_metered_per_user_with_failures() {
        /// Fails queries for odd user ids.
        struct OddDown;
        impl FallibleBlackBox for OddDown {
            fn try_top_k(&mut self, u: UserId, k: usize) -> Result<Vec<ItemId>, RecError> {
                if u.0 % 2 == 1 {
                    Err(RecError::Timeout)
                } else {
                    Ok(vec![ItemId(0); k])
                }
            }
            fn try_inject_user(&mut self, _p: &[ItemId]) -> Result<UserId, RecError> {
                Ok(UserId(0))
            }
            fn catalog_size(&self) -> usize {
                4
            }
        }
        let mut m = MeteredFallible::new(OddDown);
        let users: Vec<UserId> = (0..5u32).map(UserId).collect();
        let rs = m.try_top_k_batch(&users, 2);
        assert_eq!(rs.len(), 5);
        assert_eq!(m.queries(), 5, "a 5-user batch is 5 attempts");
        assert_eq!(m.failed_queries(), 2, "users 1 and 3 failed");
        assert!(rs[1].is_err() && rs[3].is_err());
        assert!(rs[0].is_ok() && rs[2].is_ok() && rs[4].is_ok());
    }

    #[test]
    fn default_batch_matches_sequential_queries() {
        let mut rec = Newest { n_items: 8, n_users: 0 };
        let users = [UserId(0), UserId(1)];
        let batch = BlackBoxRecommender::top_k_batch(&rec, &users, 3);
        for (i, &u) in users.iter().enumerate() {
            assert_eq!(batch[i], rec.top_k(u, 3));
        }
        let fallible = rec.try_top_k_batch(&users, 3);
        for (i, r) in fallible.into_iter().enumerate() {
            assert_eq!(r.expect("blanket impl never fails"), batch[i]);
        }
    }

    #[test]
    fn top_k_respects_k() {
        let m = MeteredRecommender::new(Newest { n_items: 10, n_users: 0 });
        assert_eq!(m.top_k(UserId(0), 4).len(), 4);
        assert_eq!(m.top_k(UserId(0), 4)[0], ItemId(9));
    }

    #[test]
    fn blanket_fallible_impl_never_fails() {
        let mut rec = Newest { n_items: 6, n_users: 0 };
        let list = rec.try_top_k(UserId(0), 3).expect("infallible blanket");
        assert_eq!(list.len(), 3);
        let id = rec.try_inject_user(&[ItemId(2)]).expect("infallible blanket");
        assert_eq!(id, UserId(0));
        assert_eq!(FallibleBlackBox::catalog_size(&rec), 6);
        rec.wait(100); // no clock on a reliable platform: no-op
    }

    #[test]
    fn metered_fallible_counts_attempts_and_failures() {
        /// Fails every other query.
        struct Flaky {
            calls: u64,
        }
        impl FallibleBlackBox for Flaky {
            fn try_top_k(&mut self, _u: UserId, k: usize) -> Result<Vec<ItemId>, RecError> {
                self.calls += 1;
                if self.calls.is_multiple_of(2) {
                    Err(RecError::Timeout)
                } else {
                    Ok(vec![ItemId(0); k])
                }
            }
            fn try_inject_user(&mut self, _p: &[ItemId]) -> Result<UserId, RecError> {
                self.calls += 1;
                if self.calls.is_multiple_of(2) {
                    Err(RecError::ServiceUnavailable)
                } else {
                    Ok(UserId(9))
                }
            }
            fn catalog_size(&self) -> usize {
                4
            }
        }

        let mut m = MeteredFallible::new(Flaky { calls: 0 });
        assert!(m.try_top_k(UserId(0), 2).is_ok());
        assert!(m.try_top_k(UserId(0), 2).is_err());
        assert!(m.try_inject_user(&[]).is_ok());
        assert!(m.try_inject_user(&[]).is_err());
        assert_eq!(m.queries(), 2);
        assert_eq!(m.failed_queries(), 1);
        assert_eq!(m.inject_attempts(), 2);
        assert_eq!(m.injections(), 1);
        assert_eq!(m.failed_injections(), 1);
    }
}
