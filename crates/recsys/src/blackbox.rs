//! The black-box attack surface (§3, §4.5).
//!
//! Under the paper's threat model the attacker can do exactly two things to
//! the target platform:
//!
//! 1. create a new account and perform interactions (= inject a profile);
//! 2. look at the Top-k recommendation list shown to an account it controls
//!    (= query).
//!
//! Everything else — model architecture, parameters, other users' data — is
//! hidden. Keeping this boundary as a trait means the attack code in
//! `copyattack-core` *cannot* cheat: it never sees model internals, only
//! this interface.

use crate::ids::{ItemId, UserId};

/// Query-and-inject interface to a deployed recommender.
pub trait BlackBoxRecommender {
    /// The Top-k recommendation list for `user`, best first, excluding items
    /// the user already interacted with (as a deployed system would).
    fn top_k(&self, user: UserId, k: usize) -> Vec<ItemId>;

    /// Creates a new account whose profile is `profile` (in interaction
    /// order) and returns its id. The platform may refresh representations
    /// (fold-in) as part of registering the interactions.
    fn inject_user(&mut self, profile: &[ItemId]) -> UserId;

    /// Number of items in the platform's catalog (public knowledge: the
    /// attacker can browse the site).
    fn catalog_size(&self) -> usize;
}

/// Counts queries and injections so experiments can report attacker cost.
///
/// Wrap any recommender to enforce/observe the paper's limited-resource
/// setting ("limited number of queries (or interactions) allowed to the
/// target recommender system").
pub struct MeteredRecommender<R> {
    inner: R,
    queries: u64,
    injections: u64,
}

impl<R: BlackBoxRecommender> MeteredRecommender<R> {
    /// Wraps `inner` with zeroed counters.
    pub fn new(inner: R) -> Self {
        Self { inner, queries: 0, injections: 0 }
    }

    /// Top-k queries issued so far.
    pub fn queries(&self) -> u64 {
        self.queries
    }

    /// Profiles injected so far.
    pub fn injections(&self) -> u64 {
        self.injections
    }

    /// Unwraps the inner recommender.
    pub fn into_inner(self) -> R {
        self.inner
    }

    /// Shared reference to the inner recommender (for owner-side evaluation
    /// after the attack, not part of the attacker surface).
    pub fn inner(&self) -> &R {
        &self.inner
    }
}

impl<R: BlackBoxRecommender> BlackBoxRecommender for MeteredRecommender<R> {
    fn top_k(&self, user: UserId, k: usize) -> Vec<ItemId> {
        // Interior counting without RefCell: queries are counted in
        // `top_k_counted`; this passthrough exists for read-only users.
        self.inner.top_k(user, k)
    }

    fn inject_user(&mut self, profile: &[ItemId]) -> UserId {
        self.injections += 1;
        self.inner.inject_user(profile)
    }

    fn catalog_size(&self) -> usize {
        self.inner.catalog_size()
    }
}

impl<R: BlackBoxRecommender> MeteredRecommender<R> {
    /// Top-k query that increments the query counter.
    pub fn top_k_counted(&mut self, user: UserId, k: usize) -> Vec<ItemId> {
        self.queries += 1;
        self.inner.top_k(user, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal fake: recommends the newest items, profile-agnostic.
    struct Newest {
        n_items: usize,
        n_users: usize,
    }

    impl BlackBoxRecommender for Newest {
        fn top_k(&self, _user: UserId, k: usize) -> Vec<ItemId> {
            (0..self.n_items as u32).rev().take(k).map(ItemId).collect()
        }
        fn inject_user(&mut self, _profile: &[ItemId]) -> UserId {
            let id = UserId(self.n_users as u32);
            self.n_users += 1;
            id
        }
        fn catalog_size(&self) -> usize {
            self.n_items
        }
    }

    #[test]
    fn metered_counts_injections_and_queries() {
        let mut m = MeteredRecommender::new(Newest { n_items: 10, n_users: 0 });
        assert_eq!(m.queries(), 0);
        let _ = m.top_k_counted(UserId(0), 3);
        let _ = m.top_k_counted(UserId(0), 3);
        let _ = m.inject_user(&[ItemId(1)]);
        assert_eq!(m.queries(), 2);
        assert_eq!(m.injections(), 1);
        assert_eq!(m.catalog_size(), 10);
    }

    #[test]
    fn top_k_respects_k() {
        let m = MeteredRecommender::new(Newest { n_items: 10, n_users: 0 });
        assert_eq!(m.top_k(UserId(0), 4).len(), 4);
        assert_eq!(m.top_k(UserId(0), 4)[0], ItemId(9));
    }
}
