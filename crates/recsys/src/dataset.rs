//! Interaction dataset: compact CSR arenas for user and item profiles.
//!
//! The interaction matrix `Y` lives in flat, cache-friendly buffers instead
//! of nested `Vec`s:
//!
//! ```text
//!   items:        [ v v v | v v | v v v v | … ]   temporal profile order
//!   sorted_items: [ v v v | v v | v v v v | … ]   same runs, id-ascending
//!   user_offsets: [ 0, 3, 5, 9, … ]               n_users + 1
//!
//!   inv_users:    [ u u | u u u | … ]             frozen inverted index
//!   inv_offsets:  [ 0, 2, 5, … ]                  n_items + 1
//!   item_pop:     [ 2, 3, … ]                     counts incl. injected tail
//! ```
//!
//! `items` holds every user profile `P_u` back to back in temporal order
//! (the paper's `v_1 → v_2 → … → v_l`); `sorted_items` mirrors the same
//! per-user runs in ascending item order so membership tests are a binary
//! search instead of a linear scan. The inverted item profiles `P_v` are a
//! counting-sorted CSR built once when a [`DatasetBuilder`] finishes.
//!
//! Users may still be appended after construction ([`Dataset::add_user`]) —
//! that is exactly the injection-attack surface — but existing profiles are
//! immutable, matching the paper's threat model (the attacker creates new
//! accounts; it cannot edit other people's histories). Injected users form
//! an *injection tail*: their interactions live in the same flat arenas, but
//! the frozen inverted index is not rebuilt. [`Dataset::item_profile`]
//! returns the frozen slice borrowed when no injected user touched the item
//! (the common case — detected in O(1) from `item_pop`), and merges the tail
//! in user-id order otherwise, which reproduces the legacy insertion order
//! bit for bit because injected ids are always larger than base ids.

use crate::ids::{ItemId, UserId};
use std::borrow::Cow;

/// An implicit-feedback interaction dataset for one domain.
///
/// See the [module docs](self) for the storage layout. The observable
/// semantics — profile iteration order, inverted-index order, dedup rules,
/// injection growth — are identical to the historical nested-`Vec` layout
/// and are pinned by golden hashes in `tests/dataplane_golden.rs`.
#[derive(Clone, Debug)]
pub struct Dataset {
    n_items: usize,
    /// Users covered by the frozen inverted index; ids `>= n_base_users`
    /// are the injection tail.
    n_base_users: usize,
    /// Flat interaction arena, per-user runs in temporal order.
    items: Vec<ItemId>,
    /// The same per-user runs in ascending item order (membership index).
    sorted_items: Vec<ItemId>,
    /// `user_offsets[u]..user_offsets[u + 1]` bounds user `u`'s run.
    user_offsets: Vec<u32>,
    /// Inverted CSR arena over the base users, per-item runs in user order.
    inv_users: Vec<UserId>,
    /// `inv_offsets[v]..inv_offsets[v + 1]` bounds item `v`'s frozen run.
    inv_offsets: Vec<u32>,
    /// Interaction count per item, kept current across injections.
    item_pop: Vec<u32>,
}

impl Dataset {
    /// An empty dataset over a fixed item catalog of size `n_items`.
    ///
    /// Every user subsequently added lands in the injection tail; bulk
    /// construction should go through [`DatasetBuilder`] so the inverted
    /// index gets frozen over the full user set.
    pub fn empty(n_items: usize) -> Self {
        DatasetBuilder::new(n_items).build()
    }

    /// Number of users (including any injected ones).
    pub fn n_users(&self) -> usize {
        self.user_offsets.len() - 1
    }

    /// Number of users covered by the frozen inverted index. Users with
    /// ids `>= n_base_users` were appended after construction (the
    /// injection tail).
    pub fn n_base_users(&self) -> usize {
        self.n_base_users
    }

    /// Size of the item catalog.
    pub fn n_items(&self) -> usize {
        self.n_items
    }

    /// Total number of interactions.
    pub fn n_interactions(&self) -> usize {
        self.items.len()
    }

    fn user_range(&self, u: UserId) -> std::ops::Range<usize> {
        self.user_offsets[u.idx()] as usize..self.user_offsets[u.idx() + 1] as usize
    }

    /// The sequential profile of user `u`.
    ///
    /// # Panics
    /// Panics if `u` is out of range.
    pub fn profile(&self, u: UserId) -> &[ItemId] {
        &self.items[self.user_range(u)]
    }

    /// User `u`'s profile in ascending item-id order — the membership run
    /// backing [`Dataset::contains`]. Same multiset as
    /// [`Dataset::profile`], different order.
    pub fn sorted_profile(&self, u: UserId) -> &[ItemId] {
        &self.sorted_items[self.user_range(u)]
    }

    /// The users who interacted with item `v`, in user-id order.
    ///
    /// Borrows the frozen inverted run when no injected user touched `v`
    /// (detected in O(1)); otherwise merges the injection tail, scanning
    /// only users `>= n_base_users`.
    pub fn item_profile(&self, v: ItemId) -> Cow<'_, [UserId]> {
        let frozen = &self.inv_users
            [self.inv_offsets[v.idx()] as usize..self.inv_offsets[v.idx() + 1] as usize];
        if self.item_pop[v.idx()] as usize == frozen.len() {
            return Cow::Borrowed(frozen);
        }
        let mut merged = Vec::with_capacity(self.item_pop[v.idx()] as usize);
        merged.extend_from_slice(frozen);
        for raw in self.n_base_users..self.n_users() {
            let u = UserId(raw as u32);
            if self.contains(u, v) {
                merged.push(u);
            }
        }
        Cow::Owned(merged)
    }

    /// Popularity (interaction count) of item `v`, in O(1).
    pub fn item_popularity(&self, v: ItemId) -> usize {
        self.item_pop[v.idx()] as usize
    }

    /// Whether user `u` has interacted with item `v` (O(log |P_u|) via the
    /// per-user sorted membership run).
    pub fn contains(&self, u: UserId, v: ItemId) -> bool {
        self.sorted_profile(u).binary_search_by_key(&v.0, |w| w.0).is_ok()
    }

    /// Iterator over all user ids.
    pub fn users(&self) -> impl Iterator<Item = UserId> + '_ {
        (0..self.n_users() as u32).map(UserId)
    }

    /// Iterator over all item ids.
    pub fn items(&self) -> impl Iterator<Item = ItemId> + '_ {
        (0..self.n_items as u32).map(ItemId)
    }

    /// Iterator over `(user, item)` pairs in profile order.
    pub fn interactions(&self) -> impl Iterator<Item = (UserId, ItemId)> + '_ {
        self.users().flat_map(move |u| self.profile(u).iter().map(move |&v| (u, v)))
    }

    /// Appends a new user with the given sequential profile and returns its
    /// id. Duplicate items within the profile are kept once (first
    /// occurrence wins) to preserve the "set of items interacted with"
    /// semantics of the interaction matrix. The new user lands in the
    /// injection tail: the frozen inverted index is left untouched and
    /// [`Dataset::item_profile`] merges on read.
    ///
    /// # Panics
    /// Panics if any item id is outside the catalog.
    pub fn add_user(&mut self, profile: &[ItemId]) -> UserId {
        let uid = UserId(self.n_users() as u32);
        append_profile(
            self.n_items,
            profile,
            &mut self.items,
            &mut self.sorted_items,
            &mut self.user_offsets,
            &mut self.item_pop,
        );
        uid
    }

    /// Mean profile length.
    pub fn mean_profile_len(&self) -> f32 {
        if self.n_users() == 0 {
            0.0
        } else {
            self.n_interactions() as f32 / self.n_users() as f32
        }
    }

    /// Validates the arenas against each other; used by tests and debug
    /// assertions after mutation-heavy code paths.
    pub fn check_consistency(&self) -> Result<(), String> {
        if self.user_offsets.first() != Some(&0) {
            return Err("user offsets must start at 0".into());
        }
        if self.user_offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err("user offsets are not monotone".into());
        }
        if *self.user_offsets.last().unwrap() as usize != self.items.len() {
            return Err(format!(
                "user offsets end at {} but arena holds {}",
                self.user_offsets.last().unwrap(),
                self.items.len()
            ));
        }
        if self.sorted_items.len() != self.items.len() {
            return Err("membership arena length diverges from interaction arena".into());
        }
        if self.inv_offsets.len() != self.n_items + 1
            || self.inv_offsets.windows(2).any(|w| w[0] > w[1])
            || *self.inv_offsets.last().unwrap_or(&0) as usize != self.inv_users.len()
        {
            return Err("inverted offsets are malformed".into());
        }
        if self.item_pop.len() != self.n_items {
            return Err("popularity counter length diverges from catalog".into());
        }
        if self.n_base_users > self.n_users() {
            return Err("base user count exceeds user count".into());
        }
        let mut pop = vec![0u32; self.n_items];
        for u in self.users() {
            let (p, s) = (self.profile(u), self.sorted_profile(u));
            for &v in p {
                if v.idx() >= self.n_items {
                    return Err(format!("user u{} references out-of-catalog item {v}", u.0));
                }
                pop[v.idx()] += 1;
            }
            if s.windows(2).any(|w| w[0].0 >= w[1].0) {
                return Err(format!("membership run of u{} is not strictly increasing", u.0));
            }
            let mut resorted: Vec<ItemId> = p.to_vec();
            resorted.sort_unstable_by_key(|v| v.0);
            if resorted != s {
                return Err(format!("membership run of u{} diverges from its profile", u.0));
            }
        }
        if pop != self.item_pop {
            return Err("popularity counters diverge from profiles".into());
        }
        // Replay base users in order against the frozen inverted index: each
        // item's run must list exactly its base interactions, user-ascending.
        let mut cursor: Vec<u32> = self.inv_offsets[..self.n_items].to_vec();
        for raw in 0..self.n_base_users {
            let u = UserId(raw as u32);
            for &v in self.profile(u) {
                let c = cursor[v.idx()] as usize;
                if c >= self.inv_offsets[v.idx() + 1] as usize || self.inv_users[c] != u {
                    return Err(format!("u{} -> {v} missing from item profile", u.0));
                }
                cursor[v.idx()] += 1;
            }
        }
        for v in self.items() {
            if cursor[v.idx()] != self.inv_offsets[v.idx() + 1] {
                return Err(format!("frozen item profile of {v} has unreferenced entries"));
            }
        }
        Ok(())
    }
}

/// Appends one profile (validated, deduped) to the flat arenas.
///
/// Dedup is order-preserving and O(l log l): positions are sorted by
/// `(item, position)` so the first occurrence of each distinct item
/// survives, then the survivors are re-sorted by position to restore
/// temporal order. The `(item, position)` pass doubles as construction of
/// the user's sorted membership run.
fn append_profile(
    n_items: usize,
    profile: &[ItemId],
    items: &mut Vec<ItemId>,
    sorted_items: &mut Vec<ItemId>,
    user_offsets: &mut Vec<u32>,
    item_pop: &mut [u32],
) {
    for &v in profile {
        assert!(v.idx() < n_items, "item {v} outside catalog of {n_items}");
    }
    let mut by_item: Vec<u32> = (0..profile.len() as u32).collect();
    by_item.sort_unstable_by_key(|&i| (profile[i as usize].0, i));
    let mut kept: Vec<u32> = Vec::with_capacity(by_item.len());
    let mut prev: Option<ItemId> = None;
    for &i in &by_item {
        let v = profile[i as usize];
        if prev != Some(v) {
            prev = Some(v);
            kept.push(i);
            sorted_items.push(v);
            item_pop[v.idx()] += 1;
        }
    }
    kept.sort_unstable();
    items.extend(kept.iter().map(|&i| profile[i as usize]));
    let end = u32::try_from(items.len()).expect("interaction arena exceeds u32 offsets");
    user_offsets.push(end);
}

/// Incremental builder for a [`Dataset`].
///
/// Profiles stream straight into the flat arenas; [`DatasetBuilder::build`]
/// freezes the inverted item index with one counting-sort pass over the
/// arena, visiting users in id order so each item's run comes out in the
/// historical insertion order.
#[derive(Clone, Debug)]
pub struct DatasetBuilder {
    n_items: usize,
    items: Vec<ItemId>,
    sorted_items: Vec<ItemId>,
    user_offsets: Vec<u32>,
    item_pop: Vec<u32>,
}

impl DatasetBuilder {
    /// Builder over an item catalog of `n_items`.
    pub fn new(n_items: usize) -> Self {
        Self {
            n_items,
            items: Vec::new(),
            sorted_items: Vec::new(),
            user_offsets: vec![0],
            item_pop: vec![0; n_items],
        }
    }

    /// Pre-sizes the arenas for a bulk load of roughly `n_interactions`.
    pub fn reserve(&mut self, n_interactions: usize) {
        self.items.reserve(n_interactions);
        self.sorted_items.reserve(n_interactions);
    }

    /// Number of users added so far.
    pub fn n_users(&self) -> usize {
        self.user_offsets.len() - 1
    }

    /// Adds a user profile; returns the assigned id.
    pub fn user(&mut self, profile: &[ItemId]) -> UserId {
        let uid = UserId(self.n_users() as u32);
        append_profile(
            self.n_items,
            profile,
            &mut self.items,
            &mut self.sorted_items,
            &mut self.user_offsets,
            &mut self.item_pop,
        );
        uid
    }

    /// Finalizes the dataset: freezes the inverted item index over every
    /// user added so far.
    pub fn build(mut self) -> Dataset {
        self.items.shrink_to_fit();
        self.sorted_items.shrink_to_fit();
        let mut inv_offsets = vec![0u32; self.n_items + 1];
        for &v in &self.items {
            inv_offsets[v.idx() + 1] += 1;
        }
        for i in 0..self.n_items {
            inv_offsets[i + 1] += inv_offsets[i];
        }
        let mut cursor = inv_offsets.clone();
        let mut inv_users = vec![UserId(0); self.items.len()];
        for u in 0..self.n_users() {
            let run = &self.items[self.user_offsets[u] as usize..self.user_offsets[u + 1] as usize];
            for &v in run {
                inv_users[cursor[v.idx()] as usize] = UserId(u as u32);
                cursor[v.idx()] += 1;
            }
        }
        let ds = Dataset {
            n_items: self.n_items,
            n_base_users: self.n_users(),
            items: self.items,
            sorted_items: self.sorted_items,
            user_offsets: self.user_offsets,
            inv_users,
            inv_offsets,
            item_pop: self.item_pop,
        };
        debug_assert!(ds.check_consistency().is_ok(), "{:?}", ds.check_consistency());
        ds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn items(v: &[u32]) -> Vec<ItemId> {
        v.iter().map(|&x| ItemId(x)).collect()
    }

    #[test]
    fn builder_round_trips_profiles() {
        let mut b = DatasetBuilder::new(5);
        let u0 = b.user(&items(&[0, 2, 4]));
        let u1 = b.user(&items(&[2, 3]));
        let ds = b.build();
        assert_eq!(ds.n_users(), 2);
        assert_eq!(ds.n_items(), 5);
        assert_eq!(ds.n_interactions(), 5);
        assert_eq!(ds.profile(u0), &items(&[0, 2, 4])[..]);
        assert_eq!(ds.profile(u1), &items(&[2, 3])[..]);
    }

    #[test]
    fn item_profiles_are_inverted_index() {
        let mut b = DatasetBuilder::new(4);
        let u0 = b.user(&items(&[0, 1]));
        let u1 = b.user(&items(&[1, 2]));
        let ds = b.build();
        assert_eq!(ds.item_profile(ItemId(1)), &[u0, u1][..]);
        assert!(ds.item_profile(ItemId(3)).is_empty());
        assert_eq!(ds.item_popularity(ItemId(1)), 2);
    }

    #[test]
    fn add_user_dedups_but_keeps_order() {
        let mut ds = Dataset::empty(5);
        let u = ds.add_user(&items(&[3, 1, 3, 2, 1]));
        assert_eq!(ds.profile(u), &items(&[3, 1, 2])[..]);
        assert_eq!(ds.sorted_profile(u), &items(&[1, 2, 3])[..]);
        assert_eq!(ds.n_interactions(), 3);
        assert!(ds.check_consistency().is_ok());
    }

    #[test]
    #[should_panic(expected = "outside catalog")]
    fn add_user_rejects_unknown_item() {
        let mut ds = Dataset::empty(2);
        ds.add_user(&items(&[2]));
    }

    #[test]
    fn contains_reflects_interactions() {
        let mut ds = Dataset::empty(3);
        let u = ds.add_user(&items(&[0, 2]));
        assert!(ds.contains(u, ItemId(0)));
        assert!(!ds.contains(u, ItemId(1)));
    }

    #[test]
    fn interactions_iterator_covers_everything() {
        let mut ds = Dataset::empty(3);
        ds.add_user(&items(&[0]));
        ds.add_user(&items(&[1, 2]));
        let all: Vec<_> = ds.interactions().collect();
        assert_eq!(
            all,
            vec![(UserId(0), ItemId(0)), (UserId(1), ItemId(1)), (UserId(1), ItemId(2))]
        );
    }

    #[test]
    fn mean_profile_len_handles_empty() {
        let ds = Dataset::empty(3);
        assert_eq!(ds.mean_profile_len(), 0.0);
        let mut ds2 = Dataset::empty(3);
        ds2.add_user(&items(&[0, 1]));
        ds2.add_user(&items(&[2]));
        assert!((ds2.mean_profile_len() - 1.5).abs() < 1e-6);
    }

    #[test]
    fn injection_grows_item_profiles() {
        let mut ds = Dataset::empty(3);
        ds.add_user(&items(&[0]));
        let before = ds.item_popularity(ItemId(0));
        let injected = ds.add_user(&items(&[0, 1]));
        assert_eq!(ds.item_popularity(ItemId(0)), before + 1);
        assert_eq!(injected, UserId(1));
        assert!(ds.check_consistency().is_ok());
    }

    #[test]
    fn injected_tail_merges_into_item_profiles_in_user_order() {
        let mut b = DatasetBuilder::new(4);
        let u0 = b.user(&items(&[0, 1]));
        let u1 = b.user(&items(&[1, 2]));
        let mut ds = b.build();
        assert_eq!(ds.n_base_users(), 2);
        // Untouched item: still the borrowed frozen run.
        assert!(matches!(ds.item_profile(ItemId(1)), Cow::Borrowed(_)));
        let u2 = ds.add_user(&items(&[1, 3]));
        let u3 = ds.add_user(&items(&[1]));
        assert_eq!(ds.n_base_users(), 2);
        // Touched item: frozen run + tail, user-ascending — the legacy
        // insertion order.
        assert_eq!(ds.item_profile(ItemId(1)), &[u0, u1, u2, u3][..]);
        assert_eq!(ds.item_profile(ItemId(3)), &[u2][..]);
        // Item only the base users touched stays borrowed.
        assert!(matches!(ds.item_profile(ItemId(0)), Cow::Borrowed(_)));
        assert_eq!(ds.item_profile(ItemId(0)), &[u0][..]);
        assert!(ds.check_consistency().is_ok());
    }

    #[test]
    fn empty_then_add_user_matches_builder() {
        let profiles = [vec![0u32, 2, 1], vec![2, 2, 3], vec![], vec![4, 0]];
        let mut b = DatasetBuilder::new(5);
        let mut ds = Dataset::empty(5);
        for p in &profiles {
            let bp = items(p);
            assert_eq!(b.user(&bp), ds.add_user(&bp));
        }
        let built = b.build();
        assert_eq!(built.n_interactions(), ds.n_interactions());
        for u in built.users() {
            assert_eq!(built.profile(u), ds.profile(u));
            assert_eq!(built.sorted_profile(u), ds.sorted_profile(u));
        }
        for v in built.items() {
            assert_eq!(built.item_profile(v), ds.item_profile(v));
            assert_eq!(built.item_popularity(v), ds.item_popularity(v));
        }
        assert!(built.check_consistency().is_ok());
        assert!(ds.check_consistency().is_ok());
    }
}
