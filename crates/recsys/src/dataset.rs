//! Interaction dataset: sequential user profiles + inverted item profiles.

use crate::ids::{ItemId, UserId};

/// An implicit-feedback interaction dataset for one domain.
///
/// Stores the interaction matrix `Y` in two redundant, mutually consistent
/// layouts:
///
/// - `profiles[u]` — the *user profile* `P_u`: the sequence of items user `u`
///   interacted with, in temporal order (the paper's `v_1 → v_2 → … → v_l`);
/// - `item_users[v]` — the *item profile* `P_v`: the users who interacted
///   with `v`, in insertion order.
///
/// Users may be appended after construction ([`Dataset::add_user`]) — that is
/// exactly the injection-attack surface — but existing profiles are
/// immutable, matching the paper's threat model (the attacker creates new
/// accounts; it cannot edit other people's histories).
#[derive(Clone, Debug)]
pub struct Dataset {
    n_items: usize,
    profiles: Vec<Vec<ItemId>>,
    item_users: Vec<Vec<UserId>>,
    n_interactions: usize,
}

impl Dataset {
    /// An empty dataset over a fixed item catalog of size `n_items`.
    pub fn empty(n_items: usize) -> Self {
        Self {
            n_items,
            profiles: Vec::new(),
            item_users: vec![Vec::new(); n_items],
            n_interactions: 0,
        }
    }

    /// Number of users (including any injected ones).
    pub fn n_users(&self) -> usize {
        self.profiles.len()
    }

    /// Size of the item catalog.
    pub fn n_items(&self) -> usize {
        self.n_items
    }

    /// Total number of interactions.
    pub fn n_interactions(&self) -> usize {
        self.n_interactions
    }

    /// The sequential profile of user `u`.
    ///
    /// # Panics
    /// Panics if `u` is out of range.
    pub fn profile(&self, u: UserId) -> &[ItemId] {
        &self.profiles[u.idx()]
    }

    /// The users who interacted with item `v`.
    pub fn item_profile(&self, v: ItemId) -> &[UserId] {
        &self.item_users[v.idx()]
    }

    /// Popularity (interaction count) of item `v`.
    pub fn item_popularity(&self, v: ItemId) -> usize {
        self.item_users[v.idx()].len()
    }

    /// Whether user `u` has interacted with item `v` (O(|P_u|)).
    pub fn contains(&self, u: UserId, v: ItemId) -> bool {
        self.profiles[u.idx()].contains(&v)
    }

    /// Iterator over all user ids.
    pub fn users(&self) -> impl Iterator<Item = UserId> + '_ {
        (0..self.profiles.len() as u32).map(UserId)
    }

    /// Iterator over all item ids.
    pub fn items(&self) -> impl Iterator<Item = ItemId> + '_ {
        (0..self.n_items as u32).map(ItemId)
    }

    /// Iterator over `(user, item)` pairs in profile order.
    pub fn interactions(&self) -> impl Iterator<Item = (UserId, ItemId)> + '_ {
        self.profiles
            .iter()
            .enumerate()
            .flat_map(|(u, p)| p.iter().map(move |&v| (UserId(u as u32), v)))
    }

    /// Appends a new user with the given sequential profile and returns its
    /// id. Duplicate items within the profile are kept once (first
    /// occurrence wins) to preserve the "set of items interacted with"
    /// semantics of the interaction matrix.
    ///
    /// # Panics
    /// Panics if any item id is outside the catalog.
    pub fn add_user(&mut self, profile: &[ItemId]) -> UserId {
        let uid = UserId(self.profiles.len() as u32);
        // Cheap dedup without a HashSet: profiles are short (≤ a few hundred).
        let mut dedup: Vec<ItemId> = Vec::with_capacity(profile.len());
        for &v in profile {
            assert!(v.idx() < self.n_items, "item {v} outside catalog of {}", self.n_items);
            if !dedup.contains(&v) {
                dedup.push(v);
            }
        }
        for &v in &dedup {
            self.item_users[v.idx()].push(uid);
        }
        self.n_interactions += dedup.len();
        self.profiles.push(dedup);
        uid
    }

    /// Mean profile length.
    pub fn mean_profile_len(&self) -> f32 {
        if self.profiles.is_empty() {
            0.0
        } else {
            self.n_interactions as f32 / self.profiles.len() as f32
        }
    }

    /// Validates the two layouts against each other; used by tests and
    /// debug assertions after mutation-heavy code paths.
    pub fn check_consistency(&self) -> Result<(), String> {
        let mut count = 0;
        for (u, p) in self.profiles.iter().enumerate() {
            for &v in p {
                if v.idx() >= self.n_items {
                    return Err(format!("user u{u} references out-of-catalog item {v}"));
                }
                if !self.item_users[v.idx()].contains(&UserId(u as u32)) {
                    return Err(format!("u{u} -> {v} missing from item profile"));
                }
                count += 1;
            }
        }
        if count != self.n_interactions {
            return Err(format!("interaction count {} != stored {}", count, self.n_interactions));
        }
        let inverted: usize = self.item_users.iter().map(Vec::len).sum();
        if inverted != count {
            return Err(format!("inverted index holds {inverted} edges, profiles hold {count}"));
        }
        Ok(())
    }
}

/// Incremental builder for a [`Dataset`].
#[derive(Clone, Debug)]
pub struct DatasetBuilder {
    ds: Dataset,
}

impl DatasetBuilder {
    /// Builder over an item catalog of `n_items`.
    pub fn new(n_items: usize) -> Self {
        Self { ds: Dataset::empty(n_items) }
    }

    /// Adds a user profile; returns the assigned id.
    pub fn user(&mut self, profile: &[ItemId]) -> UserId {
        self.ds.add_user(profile)
    }

    /// Finalizes the dataset.
    pub fn build(self) -> Dataset {
        debug_assert!(self.ds.check_consistency().is_ok());
        self.ds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn items(v: &[u32]) -> Vec<ItemId> {
        v.iter().map(|&x| ItemId(x)).collect()
    }

    #[test]
    fn builder_round_trips_profiles() {
        let mut b = DatasetBuilder::new(5);
        let u0 = b.user(&items(&[0, 2, 4]));
        let u1 = b.user(&items(&[2, 3]));
        let ds = b.build();
        assert_eq!(ds.n_users(), 2);
        assert_eq!(ds.n_items(), 5);
        assert_eq!(ds.n_interactions(), 5);
        assert_eq!(ds.profile(u0), &items(&[0, 2, 4])[..]);
        assert_eq!(ds.profile(u1), &items(&[2, 3])[..]);
    }

    #[test]
    fn item_profiles_are_inverted_index() {
        let mut b = DatasetBuilder::new(4);
        let u0 = b.user(&items(&[0, 1]));
        let u1 = b.user(&items(&[1, 2]));
        let ds = b.build();
        assert_eq!(ds.item_profile(ItemId(1)), &[u0, u1]);
        assert_eq!(ds.item_profile(ItemId(3)), &[]);
        assert_eq!(ds.item_popularity(ItemId(1)), 2);
    }

    #[test]
    fn add_user_dedups_but_keeps_order() {
        let mut ds = Dataset::empty(5);
        let u = ds.add_user(&items(&[3, 1, 3, 2, 1]));
        assert_eq!(ds.profile(u), &items(&[3, 1, 2])[..]);
        assert_eq!(ds.n_interactions(), 3);
        assert!(ds.check_consistency().is_ok());
    }

    #[test]
    #[should_panic(expected = "outside catalog")]
    fn add_user_rejects_unknown_item() {
        let mut ds = Dataset::empty(2);
        ds.add_user(&items(&[2]));
    }

    #[test]
    fn contains_reflects_interactions() {
        let mut ds = Dataset::empty(3);
        let u = ds.add_user(&items(&[0, 2]));
        assert!(ds.contains(u, ItemId(0)));
        assert!(!ds.contains(u, ItemId(1)));
    }

    #[test]
    fn interactions_iterator_covers_everything() {
        let mut ds = Dataset::empty(3);
        ds.add_user(&items(&[0]));
        ds.add_user(&items(&[1, 2]));
        let all: Vec<_> = ds.interactions().collect();
        assert_eq!(
            all,
            vec![(UserId(0), ItemId(0)), (UserId(1), ItemId(1)), (UserId(1), ItemId(2))]
        );
    }

    #[test]
    fn mean_profile_len_handles_empty() {
        let ds = Dataset::empty(3);
        assert_eq!(ds.mean_profile_len(), 0.0);
        let mut ds2 = Dataset::empty(3);
        ds2.add_user(&items(&[0, 1]));
        ds2.add_user(&items(&[2]));
        assert!((ds2.mean_profile_len() - 1.5).abs() < 1e-6);
    }

    #[test]
    fn injection_grows_item_profiles() {
        let mut ds = Dataset::empty(3);
        ds.add_user(&items(&[0]));
        let before = ds.item_popularity(ItemId(0));
        let injected = ds.add_user(&items(&[0, 1]));
        assert_eq!(ds.item_popularity(ItemId(0)), before + 1);
        assert_eq!(injected, UserId(1));
        assert!(ds.check_consistency().is_ok());
    }
}
