//! Typed identifiers for users and items.
//!
//! Plain `u32` newtypes: cheap to copy, impossible to confuse a user index
//! with an item index at an API boundary, and half the size of `usize` in
//! the (large) profile vectors.

use std::fmt;

/// Identifier of a user within one domain's `Dataset`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct UserId(pub u32);

/// Identifier of an item within one domain's `Dataset`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ItemId(pub u32);

impl UserId {
    /// The id as a `usize` index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl ItemId {
    /// The id as a `usize` index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for UserId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{}", self.0)
    }
}

impl fmt::Display for ItemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<u32> for UserId {
    fn from(v: u32) -> Self {
        UserId(v)
    }
}

impl From<u32> for ItemId {
    fn from(v: u32) -> Self {
        ItemId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(UserId(3).to_string(), "u3");
        assert_eq!(ItemId(7).to_string(), "v7");
    }

    #[test]
    fn idx_roundtrip() {
        assert_eq!(UserId(42).idx(), 42);
        assert_eq!(ItemId::from(9).idx(), 9);
    }

    #[test]
    fn ids_are_ordered() {
        assert!(UserId(1) < UserId(2));
        assert!(ItemId(5) > ItemId(0));
    }
}
