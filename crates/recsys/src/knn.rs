//! Item-based collaborative filtering (ItemKNN) recommender.
//!
//! A classical non-neural baseline recommender: item–item cosine similarity
//! over co-occurrence counts, scoring `s(u, v) = Σ_{i ∈ P_u} sim(i, v)`.
//! It serves two roles in this repository:
//!
//! 1. a *second black-box target model* for the transferability experiment
//!    (`examples/cross_domain_transfer.rs`) — profiles selected against the
//!    GNN are replayed against this model;
//! 2. a sanity-check recommender for the evaluation protocol.
//!
//! Injection updates the co-occurrence counts incrementally, exactly like a
//! deployed count-based system ingesting new interactions.

use crate::blackbox::BlackBoxRecommender;
use crate::dataset::Dataset;
use crate::engine::{self, ScoringEngine};
use crate::eval::Scorer;
use crate::ids::{ItemId, UserId};
use ca_tensor::Matrix;

/// Dense co-occurrence ItemKNN recommender.
#[derive(Clone, Debug)]
pub struct ItemKnnRecommender {
    data: Dataset,
    /// Upper-triangular co-occurrence counts, flattened; `co[i][j]` for
    /// `i < j` at `i * n - i(i+1)/2 + (j - i - 1)`.
    co: Vec<u32>,
    n_items: usize,
}

impl ItemKnnRecommender {
    /// Builds the model from the platform's interaction data.
    pub fn deploy(data: Dataset) -> Self {
        let n_items = data.n_items();
        let mut co = vec![0; n_items * (n_items.saturating_sub(1)) / 2];
        for u in data.users() {
            count_pairs(&mut co, n_items, data.profile(u), 1);
        }
        Self { co, data, n_items }
    }

    #[inline]
    fn tri_index(&self, a: usize, b: usize) -> usize {
        tri_index(self.n_items, a, b)
    }

    /// Raw co-occurrence count between two distinct items.
    pub fn cooccurrence(&self, a: ItemId, b: ItemId) -> u32 {
        if a == b {
            return self.data.item_popularity(a) as u32;
        }
        let (x, y) = if a.idx() < b.idx() { (a.idx(), b.idx()) } else { (b.idx(), a.idx()) };
        self.co[self.tri_index(x, y)]
    }

    /// Cosine similarity `co(a,b) / sqrt(pop(a)·pop(b))`.
    pub fn similarity(&self, a: ItemId, b: ItemId) -> f32 {
        let pa = self.data.item_popularity(a) as f32;
        let pb = self.data.item_popularity(b) as f32;
        if pa == 0.0 || pb == 0.0 {
            return 0.0;
        }
        self.cooccurrence(a, b) as f32 / (pa * pb).sqrt()
    }

    /// The platform data (owner-side).
    pub fn data(&self) -> &Dataset {
        &self.data
    }
}

#[inline]
fn tri_index(n_items: usize, a: usize, b: usize) -> usize {
    debug_assert!(a < b);
    a * n_items - a * (a + 1) / 2 + (b - a - 1)
}

/// Adds `delta` to every unordered item pair of `profile` in the flattened
/// upper-triangular count table. A free function (not a method) so callers
/// can hold the profile slice borrowed from the same recommender's dataset.
fn count_pairs(co: &mut [u32], n_items: usize, profile: &[ItemId], delta: i64) {
    for i in 0..profile.len() {
        for j in (i + 1)..profile.len() {
            let (a, b) = (profile[i].idx(), profile[j].idx());
            let (a, b) = if a < b { (a, b) } else { (b, a) };
            if a == b {
                continue;
            }
            let idx = tri_index(n_items, a, b);
            co[idx] = (co[idx] as i64 + delta).max(0) as u32;
        }
    }
}

impl Scorer for ItemKnnRecommender {
    fn score(&self, user: UserId, item: ItemId) -> f32 {
        self.data
            .profile(user)
            .iter()
            .map(|&i| if i == item { 0.0 } else { self.similarity(i, item) })
            .sum()
    }
}

impl ScoringEngine for ItemKnnRecommender {
    fn catalog_len(&self) -> usize {
        self.n_items
    }

    fn is_seen(&self, user: UserId, item: ItemId) -> bool {
        self.data.contains(user, item)
    }

    fn score_batch(&self, users: &[UserId], out: &mut Matrix) {
        // Accumulate similarity mass profile-item by profile-item; the
        // `i == v` skip only affects seen items, which ranking masks anyway,
        // but is kept so scores match `Scorer::score` exactly.
        for (i, &u) in users.iter().enumerate() {
            let row = out.row_mut(i);
            row.fill(0.0);
            for &pi in self.data.profile(u) {
                for (v, s) in row.iter_mut().enumerate() {
                    let item = ItemId(v as u32);
                    if pi != item {
                        *s += self.similarity(pi, item);
                    }
                }
            }
        }
    }
}

impl BlackBoxRecommender for ItemKnnRecommender {
    fn top_k(&self, user: UserId, k: usize) -> Vec<ItemId> {
        engine::single_top_k(self, user, k)
    }

    // ca-audit: allow(nested-vec) — k-sized per-query batch result, not dataset-scale state
    fn top_k_batch(&self, users: &[UserId], k: usize) -> Vec<Vec<ItemId>> {
        engine::auto_batch_top_k(self, users, k)
    }

    fn inject_user(&mut self, profile: &[ItemId]) -> UserId {
        let uid = self.data.add_user(profile);
        // Disjoint field borrows: read the stored (deduped) run straight
        // from the arena while updating the co-occurrence counts.
        count_pairs(&mut self.co, self.n_items, self.data.profile(uid), 1);
        uid
    }

    fn catalog_size(&self) -> usize {
        self.n_items
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetBuilder;

    fn items(v: &[u32]) -> Vec<ItemId> {
        v.iter().map(|&x| ItemId(x)).collect()
    }

    fn platform() -> ItemKnnRecommender {
        let mut b = DatasetBuilder::new(8);
        b.user(&items(&[0, 1, 2]));
        b.user(&items(&[0, 1]));
        b.user(&items(&[3, 4]));
        b.user(&items(&[3, 4, 5]));
        ItemKnnRecommender::deploy(b.build())
    }

    #[test]
    fn cooccurrence_counts_are_correct() {
        let rec = platform();
        assert_eq!(rec.cooccurrence(ItemId(0), ItemId(1)), 2);
        assert_eq!(rec.cooccurrence(ItemId(1), ItemId(0)), 2);
        assert_eq!(rec.cooccurrence(ItemId(0), ItemId(2)), 1);
        assert_eq!(rec.cooccurrence(ItemId(0), ItemId(3)), 0);
    }

    #[test]
    fn similarity_is_cosine_normalized() {
        let rec = platform();
        // co(0,1) = 2, pop(0) = 2, pop(1) = 2 → sim = 1.
        assert!((rec.similarity(ItemId(0), ItemId(1)) - 1.0).abs() < 1e-6);
        assert_eq!(rec.similarity(ItemId(0), ItemId(6)), 0.0);
    }

    #[test]
    fn recommendations_follow_cooccurrence_neighborhoods() {
        let rec = platform();
        // User 1 has {0, 1}; item 2 co-occurs with both; items 3..5 do not.
        let top = rec.top_k(UserId(1), 1);
        assert_eq!(top[0], ItemId(2));
    }

    #[test]
    fn injection_shifts_recommendations() {
        let mut rec = platform();
        let before = rec.score(UserId(1), ItemId(6));
        assert_eq!(before, 0.0);
        // Inject users pairing item 6 with items 0 and 1.
        for _ in 0..3 {
            rec.inject_user(&items(&[0, 1, 6]));
        }
        let after = rec.score(UserId(1), ItemId(6));
        assert!(after > 0.0, "injection must create similarity mass");
        assert!(rec.top_k(UserId(1), 2).contains(&ItemId(6)));
    }

    #[test]
    fn incremental_injection_matches_full_redeploy() {
        let mut rec = platform();
        rec.inject_user(&items(&[2, 5, 7]));
        rec.inject_user(&items(&[0, 7]));
        let rebuilt = ItemKnnRecommender::deploy(rec.data().clone());
        for a in 0..8u32 {
            for b in (a + 1)..8u32 {
                assert_eq!(
                    rec.cooccurrence(ItemId(a), ItemId(b)),
                    rebuilt.cooccurrence(ItemId(a), ItemId(b)),
                    "pair ({a},{b})"
                );
            }
        }
    }

    #[test]
    fn self_similarity_uses_popularity() {
        let rec = platform();
        assert_eq!(rec.cooccurrence(ItemId(0), ItemId(0)), 2);
    }
}
