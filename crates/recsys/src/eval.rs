//! Sampled ranking evaluation (§5.1.2) and target-item promotion metrics.
//!
//! "As the ranking task is too time-consuming to rank all the items for all
//! the users, we randomly sample 100 items that the user did not interact
//! with and then rank the test item among them."

use crate::dataset::Dataset;
use crate::ids::{ItemId, UserId};
use crate::metrics::MetricAccumulator;
use crate::split::HeldOut;
use rand::Rng;

/// Anything that can score a `(user, item)` pair. Implemented by the MF and
/// GNN recommenders. Higher scores rank earlier.
pub trait Scorer {
    /// Predicted preference of `user` for `item`.
    fn score(&self, user: UserId, item: ItemId) -> f32;
}

/// Number of sampled negatives in the paper's protocol.
pub const NUM_NEGATIVES: usize = 100;

/// The sampled ranking evaluator.
pub struct RankingEval<'a> {
    /// Interactions that count as "already seen" when sampling negatives
    /// (the training set, per the paper).
    pub seen: &'a Dataset,
    /// Cutoffs to report.
    pub ks: Vec<usize>,
}

impl<'a> RankingEval<'a> {
    /// Evaluator with Table 2's cutoffs `{20, 10, 5}`.
    pub fn standard(seen: &'a Dataset) -> Self {
        Self { seen, ks: vec![20, 10, 5] }
    }

    /// Rank of `item` for `user` among `NUM_NEGATIVES` sampled unseen items
    /// (0-based; 0 = best). Ties are broken pessimistically (the test item
    /// loses), so a degenerate constant scorer does not look artificially
    /// good.
    pub fn rank_against_negatives(
        &self,
        scorer: &impl Scorer,
        user: UserId,
        item: ItemId,
        rng: &mut impl Rng,
    ) -> usize {
        let target_score = scorer.score(user, item);
        let n_items = self.seen.n_items() as u32;
        let mut rank = 0;
        let mut drawn = 0;
        while drawn < NUM_NEGATIVES {
            let cand = ItemId(rng.gen_range(0..n_items));
            if cand == item || self.seen.contains(user, cand) {
                continue;
            }
            drawn += 1;
            if scorer.score(user, cand) >= target_score {
                rank += 1;
            }
        }
        rank
    }

    /// HR@K / NDCG@K over a held-out pair list.
    pub fn evaluate(
        &self,
        scorer: &impl Scorer,
        heldout: &[HeldOut],
        rng: &mut impl Rng,
    ) -> MetricAccumulator {
        let mut acc = MetricAccumulator::new(&self.ks);
        for h in heldout {
            let rank = self.rank_against_negatives(scorer, h.user, h.item, rng);
            acc.push(rank);
        }
        acc
    }

    /// Promotion metrics for a target item: ranks `target` for each user in
    /// `users` against sampled negatives and accumulates HR/NDCG. This is
    /// the quantity Table 2 reports ("hit ratio of the targeted items in the
    /// Top-k recommendation list of the users in the target domain").
    ///
    /// Users who already interacted with `target` are skipped: the paper
    /// defines promotion over users that did not have the item before.
    pub fn evaluate_promotion(
        &self,
        scorer: &impl Scorer,
        users: &[UserId],
        target: ItemId,
        rng: &mut impl Rng,
    ) -> MetricAccumulator {
        let mut acc = MetricAccumulator::new(&self.ks);
        for &u in users {
            if self.seen.contains(u, target) {
                continue;
            }
            let rank = self.rank_against_negatives(scorer, u, target, rng);
            acc.push(rank);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Scores item id directly: item 199 always ranks first.
    struct IdScorer;
    impl Scorer for IdScorer {
        fn score(&self, _u: UserId, v: ItemId) -> f32 {
            v.0 as f32
        }
    }

    /// Constant scorer: everything ties.
    struct FlatScorer;
    impl Scorer for FlatScorer {
        fn score(&self, _u: UserId, _v: ItemId) -> f32 {
            0.0
        }
    }

    fn toy() -> Dataset {
        let mut b = DatasetBuilder::new(200);
        for u in 0..10 {
            let profile: Vec<ItemId> = (0..5).map(|i| ItemId((u * 5 + i) as u32)).collect();
            b.user(&profile);
        }
        b.build()
    }

    #[test]
    fn best_item_has_rank_zero() {
        let ds = toy();
        let ev = RankingEval::standard(&ds);
        let mut rng = StdRng::seed_from_u64(1);
        let rank = ev.rank_against_negatives(&IdScorer, UserId(0), ItemId(199), &mut rng);
        assert_eq!(rank, 0);
    }

    #[test]
    fn worst_item_has_rank_100() {
        let ds = toy();
        let ev = RankingEval::standard(&ds);
        let mut rng = StdRng::seed_from_u64(2);
        // User 3's profile is items 15..20, so item 0 is a valid unseen item
        // and scores lowest.
        let rank = ev.rank_against_negatives(&IdScorer, UserId(3), ItemId(0), &mut rng);
        assert_eq!(rank, NUM_NEGATIVES);
    }

    #[test]
    fn ties_are_pessimistic() {
        let ds = toy();
        let ev = RankingEval::standard(&ds);
        let mut rng = StdRng::seed_from_u64(3);
        let rank = ev.rank_against_negatives(&FlatScorer, UserId(0), ItemId(150), &mut rng);
        assert_eq!(rank, NUM_NEGATIVES, "constant scorer must not get credit");
    }

    #[test]
    fn evaluate_aggregates_over_heldout() {
        let ds = toy();
        let ev = RankingEval::standard(&ds);
        let mut rng = StdRng::seed_from_u64(4);
        let heldout = vec![
            HeldOut { user: UserId(0), item: ItemId(199) },
            HeldOut { user: UserId(1), item: ItemId(198) },
        ];
        let acc = ev.evaluate(&IdScorer, &heldout, &mut rng);
        assert_eq!(acc.count(), 2);
        assert_eq!(acc.hr(5), 1.0);
    }

    #[test]
    fn promotion_skips_users_who_have_the_item() {
        let ds = toy();
        let ev = RankingEval::standard(&ds);
        let mut rng = StdRng::seed_from_u64(5);
        // Item 0 is in user 0's profile but in nobody else's.
        let users: Vec<UserId> = (0..10).map(UserId).collect();
        let acc = ev.evaluate_promotion(&IdScorer, &users, ItemId(0), &mut rng);
        assert_eq!(acc.count(), 9);
    }

    #[test]
    fn promotion_of_top_item_hits_everywhere() {
        let ds = toy();
        let ev = RankingEval::standard(&ds);
        let mut rng = StdRng::seed_from_u64(6);
        let users: Vec<UserId> = (0..10).map(UserId).collect();
        let acc = ev.evaluate_promotion(&IdScorer, &users, ItemId(199), &mut rng);
        assert_eq!(acc.hr(20), 1.0);
        assert_eq!(acc.ndcg(20), 1.0);
    }
}
