//! Item popularity: the non-personalized baseline recommender, plus the
//! popularity-decile analysis for the Figure 4 experiment.
//!
//! §5.3.2 groups target-domain items into 10 popularity deciles ("each group
//! account for 10% of items") and attacks 50 sampled items per group.
//! [`PopularityRecommender`] is the classical most-popular baseline target:
//! every user sees the same catalog-wide popularity ranking minus their own
//! profile — and its all-tied cold-item tail makes it the stress test for
//! deterministic tie-breaking in the shared ranking path.

use crate::blackbox::BlackBoxRecommender;
use crate::dataset::Dataset;
use crate::engine::{self, ScoringEngine};
use crate::eval::Scorer;
use crate::ids::{ItemId, UserId};
use ca_tensor::Matrix;
use rand::seq::SliceRandom;
use rand::Rng;

/// Most-popular-items recommender: `score(u, v) = popularity(v)`,
/// user-independent except for seen-item exclusion.
///
/// Injection simply registers the new account's interactions, which bump
/// the popularity counts — the only channel an attack has against a
/// count-based system, and exactly how shilling attacks on "trending"
/// shelves work in practice.
#[derive(Clone, Debug)]
pub struct PopularityRecommender {
    data: Dataset,
}

impl PopularityRecommender {
    /// Deploys the baseline over the platform's interaction data.
    pub fn deploy(data: Dataset) -> Self {
        Self { data }
    }

    /// The platform data (owner-side).
    pub fn data(&self) -> &Dataset {
        &self.data
    }
}

impl Scorer for PopularityRecommender {
    fn score(&self, _user: UserId, item: ItemId) -> f32 {
        self.data.item_popularity(item) as f32
    }
}

impl ScoringEngine for PopularityRecommender {
    fn catalog_len(&self) -> usize {
        self.data.n_items()
    }

    fn is_seen(&self, user: UserId, item: ItemId) -> bool {
        self.data.contains(user, item)
    }

    fn score_batch(&self, users: &[UserId], out: &mut Matrix) {
        if users.is_empty() {
            return;
        }
        // Scores are user-independent: fill the first row, copy the rest.
        for (v, s) in out.row_mut(0).iter_mut().enumerate() {
            *s = self.data.item_popularity(ItemId(v as u32)) as f32;
        }
        for i in 1..users.len() {
            let (head, tail) = out.as_mut_slice().split_at_mut(i * self.data.n_items());
            tail[..self.data.n_items()].copy_from_slice(&head[..self.data.n_items()]);
        }
    }
}

impl BlackBoxRecommender for PopularityRecommender {
    fn top_k(&self, user: UserId, k: usize) -> Vec<ItemId> {
        engine::single_top_k(self, user, k)
    }

    // ca-audit: allow(nested-vec) — k-sized per-query batch result, not dataset-scale state
    fn top_k_batch(&self, users: &[UserId], k: usize) -> Vec<Vec<ItemId>> {
        engine::auto_batch_top_k(self, users, k)
    }

    fn inject_user(&mut self, profile: &[ItemId]) -> UserId {
        self.data.add_user(profile)
    }

    fn catalog_size(&self) -> usize {
        self.data.n_items()
    }
}

/// Items grouped into popularity buckets, most popular bucket first.
///
/// CSR layout: the whole catalog, popularity-sorted, in one flat buffer
/// with per-group offsets — groups are contiguous slices of the sort.
#[derive(Clone, Debug)]
pub struct PopularityGroups {
    /// Catalog sorted by descending popularity, groups back to back.
    items: Vec<ItemId>,
    /// `offsets[g]..offsets[g + 1]` bounds group `g`.
    offsets: Vec<u32>,
}

impl PopularityGroups {
    /// Splits the catalog into `n_groups` equal-size buckets by descending
    /// interaction count (group 0 = most popular 1/n of items).
    ///
    /// # Panics
    /// Panics if `n_groups` is 0 or exceeds the catalog size.
    pub fn build(ds: &Dataset, n_groups: usize) -> Self {
        assert!(n_groups > 0, "need at least one group");
        assert!(n_groups <= ds.n_items(), "more groups than items");
        let mut items: Vec<ItemId> = ds.items().collect();
        items.sort_by_key(|&v| std::cmp::Reverse(ds.item_popularity(v)));
        let n = items.len();
        let offsets = (0..=n_groups).map(|g| (g * n / n_groups) as u32).collect();
        Self { items, offsets }
    }

    /// Number of groups.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Whether there are no groups (never true after `build`).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The items of group `g` (0 = most popular).
    pub fn group(&self, g: usize) -> &[ItemId] {
        assert!(g < self.len(), "group {g} out of {}", self.len());
        &self.items[self.offsets[g] as usize..self.offsets[g + 1] as usize]
    }

    /// Samples up to `n` items from group `g` without replacement.
    pub fn sample(&self, g: usize, n: usize, rng: &mut impl Rng) -> Vec<ItemId> {
        let mut items = self.group(g).to_vec();
        items.shuffle(rng);
        items.truncate(n);
        items
    }
}

/// Samples `n` *unpopular* target items with fewer than `max_interactions`
/// interactions — the paper's target-item selection ("randomly sample 50
/// target items with less than 10 interactions", §5.1.3).
///
/// Returns fewer than `n` if the catalog does not contain enough such items.
pub fn sample_cold_items(
    ds: &Dataset,
    n: usize,
    max_interactions: usize,
    rng: &mut impl Rng,
) -> Vec<ItemId> {
    let mut cold: Vec<ItemId> =
        ds.items().filter(|&v| ds.item_popularity(v) < max_interactions).collect();
    cold.shuffle(rng);
    cold.truncate(n);
    cold
}

/// Samples `n` *cold items that also appear in `overlap`* — CopyAttack can
/// only attack items that exist in both domains (`v* ∈ V^A ∩ V^B`, §3).
pub fn sample_cold_overlap_items(
    ds: &Dataset,
    overlap: &[ItemId],
    n: usize,
    max_interactions: usize,
    rng: &mut impl Rng,
) -> Vec<ItemId> {
    let mut cold: Vec<ItemId> =
        overlap.iter().copied().filter(|&v| ds.item_popularity(v) < max_interactions).collect();
    cold.shuffle(rng);
    cold.truncate(n);
    cold
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Item v gets v interactions (item 0 none, item 9 nine).
    fn graded() -> Dataset {
        let mut b = DatasetBuilder::new(10);
        for u in 0..9u32 {
            // User u interacts with items {u+1, ..., 9}.
            let profile: Vec<ItemId> = ((u + 1)..10).map(ItemId).collect();
            b.user(&profile);
        }
        b.build()
    }

    #[test]
    fn popularity_recommender_ranks_by_count_then_id() {
        let rec = PopularityRecommender::deploy(graded());
        // User 8 saw only item 9; best unseen are 8, 7, 6…
        let top = rec.top_k(UserId(8), 3);
        assert_eq!(top, vec![ItemId(8), ItemId(7), ItemId(6)]);
        for v in rec.top_k(UserId(0), 9) {
            assert!(!rec.data().contains(UserId(0), v));
        }
    }

    #[test]
    fn popularity_ties_resolve_deterministically() {
        // Empty dataset: every item has popularity 0 → one big tie, broken
        // by ascending item id on both the single and batched paths.
        let mut rec = PopularityRecommender::deploy(Dataset::empty(6));
        let u = rec.inject_user(&[]);
        let expected: Vec<ItemId> = (0..4u32).map(ItemId).collect();
        assert_eq!(rec.top_k(u, 4), expected);
        assert_eq!(rec.top_k_batch(&[u, u], 4), vec![expected.clone(), expected]);
    }

    #[test]
    fn popularity_injection_promotes_items() {
        let mut rec = PopularityRecommender::deploy(graded());
        let watcher = UserId(8); // profile {9}
        assert!(!rec.top_k(watcher, 2).contains(&ItemId(1)));
        for _ in 0..10 {
            rec.inject_user(&[ItemId(1)]);
        }
        assert!(rec.top_k(watcher, 2).contains(&ItemId(1)));
    }

    #[test]
    fn groups_cover_catalog_exactly_once() {
        let ds = graded();
        let g = PopularityGroups::build(&ds, 5);
        let mut all: Vec<ItemId> = (0..5).flat_map(|i| g.group(i).to_vec()).collect();
        all.sort();
        let expected: Vec<ItemId> = (0..10u32).map(ItemId).collect();
        assert_eq!(all, expected);
    }

    #[test]
    fn group_zero_is_most_popular() {
        let ds = graded();
        let g = PopularityGroups::build(&ds, 5);
        let min_pop_g0 = g.group(0).iter().map(|&v| ds.item_popularity(v)).min().unwrap();
        let max_pop_last = g.group(4).iter().map(|&v| ds.item_popularity(v)).max().unwrap();
        assert!(min_pop_g0 >= max_pop_last);
    }

    #[test]
    fn sample_draws_from_the_right_group() {
        let ds = graded();
        let g = PopularityGroups::build(&ds, 2);
        let mut rng = StdRng::seed_from_u64(1);
        let s = g.sample(1, 3, &mut rng);
        assert_eq!(s.len(), 3);
        for v in s {
            assert!(g.group(1).contains(&v));
        }
    }

    #[test]
    fn cold_items_respect_threshold() {
        let ds = graded();
        let mut rng = StdRng::seed_from_u64(2);
        let cold = sample_cold_items(&ds, 100, 3, &mut rng);
        for v in &cold {
            assert!(ds.item_popularity(*v) < 3);
        }
        // Items with popularity 0, 1, 2 → ids 9 (pop 1)? Actually pop of
        // item v is v users: item 1 has 1, item 2 has 2. Items 0,1,2 qualify.
        assert_eq!(cold.len(), 3);
    }

    #[test]
    fn cold_overlap_restricts_to_overlap_set() {
        let ds = graded();
        let overlap = vec![ItemId(1), ItemId(5), ItemId(2)];
        let mut rng = StdRng::seed_from_u64(3);
        let cold = sample_cold_overlap_items(&ds, &overlap, 10, 3, &mut rng);
        for v in &cold {
            assert!(overlap.contains(v));
            assert!(ds.item_popularity(*v) < 3);
        }
        assert_eq!(cold.len(), 2); // items 1 and 2
    }

    #[test]
    #[should_panic(expected = "more groups than items")]
    fn too_many_groups_panics() {
        let ds = graded();
        let _ = PopularityGroups::build(&ds, 11);
    }
}
