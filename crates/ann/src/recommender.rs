//! An ANN-backed black-box platform: the same attack surface, sublinear
//! retrieval behind it.

use crate::ivf::{IvfConfig, IvfIndex};
use ca_recsys::{BlackBoxRecommender, EmbeddingEngine, ItemId, UserId};

/// Wraps an embedding-backed recommender so every Top-k it serves goes
/// through an [`IvfIndex`] instead of the exact full-catalog scan.
///
/// The index is built once at [`deploy`](IvfRecommender::deploy) and then
/// *frozen*: injected profiles update the underlying model (fold-in) but
/// not the cell assignment, exactly like a deployed system whose ANN
/// shards refresh only at retrain. Call
/// [`rebuild_index`](IvfRecommender::rebuild_index) to model that retrain
/// and observe how drift interacts with cell assignment.
#[derive(Clone, Debug)]
pub struct IvfRecommender<R> {
    inner: R,
    cfg: IvfConfig,
    index: IvfIndex,
}

impl<R: EmbeddingEngine + Sync> IvfRecommender<R> {
    /// Builds the index over `inner`'s current item embeddings and serves
    /// all further queries through it.
    pub fn deploy(inner: R, cfg: IvfConfig) -> Self {
        let index = IvfIndex::build(&inner, &cfg);
        IvfRecommender { inner, cfg, index }
    }

    /// Re-clusters the catalog against the *current* embeddings — the
    /// retrain boundary at which a real platform refreshes its ANN shards.
    pub fn rebuild_index(&mut self) {
        self.index = IvfIndex::build(&self.inner, &self.cfg);
    }

    /// The wrapped recommender.
    pub fn inner(&self) -> &R {
        &self.inner
    }

    /// Unwraps the underlying recommender (e.g. to evaluate promotion on
    /// the model itself after an ANN-backed campaign).
    pub fn into_inner(self) -> R {
        self.inner
    }

    /// The live index.
    pub fn index(&self) -> &IvfIndex {
        &self.index
    }

    /// The build/search parameters.
    pub fn config(&self) -> &IvfConfig {
        &self.cfg
    }
}

impl<R: EmbeddingEngine + BlackBoxRecommender + Sync> BlackBoxRecommender for IvfRecommender<R> {
    fn top_k(&self, user: UserId, k: usize) -> Vec<ItemId> {
        self.index.top_k(&self.inner, user, k, self.cfg.nprobe)
    }

    // ca-audit: allow(nested-vec) — k-sized per-query batch result, not dataset-scale state
    fn top_k_batch(&self, users: &[UserId], k: usize) -> Vec<Vec<ItemId>> {
        self.index.batch_top_k(&self.inner, users, k, self.cfg.nprobe)
    }

    fn inject_user(&mut self, profile: &[ItemId]) -> UserId {
        // Deliberately no index rebuild: the injected profile folds into
        // the model while cell assignments stay frozen until retrain.
        self.inner.inject_user(profile)
    }

    fn catalog_size(&self) -> usize {
        self.inner.catalog_size()
    }
}
