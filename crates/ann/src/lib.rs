//! Deterministic IVF (inverted-file) approximate retrieval.
//!
//! The exact engine answers every Top-k query with a full-catalog GEMM —
//! `O(users × items × dim)` per reward round. That is a hard wall at the
//! million-item scale the ROADMAP north-star demands: the CopyAttack loop
//! re-ranks the catalog for 50 pretend users after *every* injection step.
//! This crate makes retrieval sublinear the way production recommenders do
//! it, while keeping the workspace determinism contract:
//!
//! - **Index** ([`IvfIndex`]): item representations (from
//!   [`EmbeddingEngine`](ca_recsys::EmbeddingEngine)) are partitioned into
//!   `nlist` cells by `ca-cluster` k-means (balanced when the catalog is
//!   small enough to cluster whole, sampled + nearest-assign above that),
//!   stored as a flat CSR cell→items arena in the PR-7 style.
//! - **Search**: a query probes the `nprobe` cells whose centroids score
//!   highest against the user's query vector, exact-scores only the items
//!   in those cells through `EmbeddingEngine::score_items` (bitwise equal
//!   to the full GEMM's cells), and ranks survivors through the *same*
//!   deterministic tie-break as the exact path
//!   ([`select_top_k`](ca_recsys::select_top_k)). Pruning the candidate
//!   set is therefore the only source of approximation; the exact engine
//!   stays available as the parity/recall oracle.
//! - **Determinism**: the index build is seeded ([`IvfConfig::seed`]) and
//!   its only parallel stage assigns points independently, so index and
//!   results are bitwise-identical at any `CA_THREADS`.
//!
//! [`IvfRecommender`] wraps an embedding-backed black-box target so whole
//! attack campaigns run against an ANN-backed platform; injected profiles
//! drift against the frozen index until an explicit
//! [`rebuild_index`](IvfRecommender::rebuild_index) (= retrain), mirroring
//! how deployed systems refresh ANN shards.

#![forbid(unsafe_code)]

pub mod ivf;
pub mod recommender;

pub use ivf::{retrieve_batch_top_k, IvfConfig, IvfIndex};
pub use recommender::IvfRecommender;
