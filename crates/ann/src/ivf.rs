//! The IVF index: seeded build, CSR posting layout, and probed search.

use ca_recsys::{auto_batch_top_k, select_top_k, EmbeddingEngine, ItemId, RetrievalMode, UserId};
use ca_tensor::{ops, Matrix, Scratch};
use rand::prelude::*;
use std::cell::RefCell;

/// Build- and search-time parameters of an IVF index.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IvfConfig {
    /// Number of cells the catalog is partitioned into (clamped to the
    /// catalog size at build time).
    pub nlist: usize,
    /// Number of nearest cells scored per query.
    pub nprobe: usize,
    /// k-means iteration budget.
    pub max_iters: usize,
    /// Catalogs up to this size are clustered whole with balanced k-means;
    /// above it, k-means trains on a stride-sample of this many items and
    /// the full catalog is assigned to the nearest trained centroid (the
    /// balanced variant materializes all `n × nlist` point/centroid pairs,
    /// which does not scale to millions of items).
    pub train_cap: usize,
    /// Seed of the k-means initialization; the whole build is a pure
    /// function of (embeddings, config).
    pub seed: u64,
}

impl IvfConfig {
    /// A config with the workspace-default build budget.
    pub fn new(nlist: usize, nprobe: usize) -> Self {
        IvfConfig { nlist, nprobe, max_iters: 25, train_cap: 16_384, seed: 0x1bf_5eed }
    }

    /// The config an engine-level [`RetrievalMode`] knob asks for, or
    /// `None` for `Exact`.
    pub fn from_mode(mode: RetrievalMode) -> Option<Self> {
        match mode {
            RetrievalMode::Exact => None,
            RetrievalMode::Ivf { nlist, nprobe } => Some(IvfConfig::new(nlist, nprobe)),
        }
    }

    /// The engine-level knob equivalent of this config.
    pub fn mode(&self) -> RetrievalMode {
        RetrievalMode::Ivf { nlist: self.nlist, nprobe: self.nprobe }
    }
}

/// Parallelize batched search only past this many users…
const PAR_MIN_USERS: usize = 8;
/// …and this many *estimated probed* score cells — the IVF analogue of the
/// exact engine's score-matrix gate, so small batches skip thread spawn.
const PAR_MIN_CELLS: usize = 1 << 18;

thread_local! {
    /// Per-thread search buffers: a [`Scratch`] pool (query vector, cell
    /// and candidate pair lists, candidate scores) plus the candidate-id
    /// list handed to `score_items`. Steady-state search allocates nothing
    /// beyond the k-sized result lists.
    static ANN_SCRATCH: RefCell<(Scratch, Vec<ItemId>)> =
        RefCell::new((Scratch::new(), Vec::new()));
}

/// Index of the centroid nearest to `p` (ties to the lowest index, so the
/// parallel assignment stage is order-independent and deterministic).
fn nearest(p: &[f32], centroids: &Matrix) -> usize {
    let mut best = 0;
    let mut best_d = f32::INFINITY;
    for c in 0..centroids.rows() {
        let d = ops::sq_dist(p, centroids.row(c));
        if d < best_d {
            best_d = d;
            best = c;
        }
    }
    best
}

/// A seeded inverted-file index over one engine's item embeddings.
///
/// Layout is a flat CSR arena: `cell_items[cell_offsets[c]..cell_offsets
/// [c + 1]]` lists the items of cell `c` in ascending id order, and
/// `item_cell[v]` is the inverse map. Centroids are the exact per-cell
/// means of the indexed embeddings (accumulated serially in item order, so
/// the rounding schedule is fixed).
#[derive(Clone, Debug)]
pub struct IvfIndex {
    dim: usize,
    centroids: Matrix,
    cell_offsets: Vec<u32>,
    cell_items: Vec<u32>,
    item_cell: Vec<u32>,
}

impl IvfIndex {
    /// Builds the index for `engine`'s current item embeddings. Bitwise
    /// deterministic at any `CA_THREADS`: k-means is seeded from
    /// `cfg.seed`, and the only parallel stage (full-catalog
    /// nearest-centroid assignment) treats every point independently.
    pub fn build<E: EmbeddingEngine + Sync + ?Sized>(engine: &E, cfg: &IvfConfig) -> IvfIndex {
        let n = engine.catalog_len();
        let dim = engine.embedding_dim();
        assert!(n > 0, "cannot index an empty catalog");
        assert!(dim > 0, "cannot index zero-width embeddings");
        let nlist = cfg.nlist.max(1).min(n);

        let mut emb = Matrix::zeros(n, dim);
        for v in 0..n {
            engine.item_embedding_into(ItemId(v as u32), emb.row_mut(v));
        }

        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let (assignment, trained) = if n <= cfg.train_cap.max(nlist) {
            // Small catalog: balanced k-means over every item, exactly the
            // clustering the attack tree uses (cells sized within one).
            let rows: Vec<&[f32]> = (0..n).map(|v| emb.row(v)).collect();
            let assign = ca_cluster::balanced_kmeans(&rows, nlist, cfg.max_iters, &mut rng);
            (assign.into_iter().map(|c| c as u32).collect::<Vec<u32>>(), None)
        } else {
            // Large catalog: train centroids on a deterministic stride
            // sample, then assign the full catalog in parallel (each point
            // independent, so the chunk grid cannot change results).
            let m = cfg.train_cap.max(nlist);
            let sample: Vec<&[f32]> = (0..m).map(|i| emb.row(i * n / m)).collect();
            let res = ca_cluster::kmeans(&sample, nlist, cfg.max_iters, &mut rng);
            let rows: Vec<&[f32]> = res.centroids.iter().map(|c| c.as_slice()).collect();
            let trained = Matrix::from_rows(&rows);
            let chunks = ca_par::even_chunks(n, ca_par::threads());
            let assign: Vec<u32> = ca_par::map(&chunks, |_, r| {
                r.clone().map(|v| nearest(emb.row(v), &trained) as u32).collect::<Vec<u32>>()
            })
            .into_iter()
            .flatten()
            .collect();
            (assign, Some(trained))
        };

        // CSR posting lists: counts → prefix sums → fill in ascending item
        // order, so each cell's items come out id-sorted.
        let mut counts = vec![0u32; nlist];
        for &c in &assignment {
            counts[c as usize] += 1;
        }
        let mut cell_offsets = vec![0u32; nlist + 1];
        for c in 0..nlist {
            cell_offsets[c + 1] = cell_offsets[c] + counts[c];
        }
        let mut cursor: Vec<u32> = cell_offsets[..nlist].to_vec();
        let mut cell_items = vec![0u32; n];
        for (v, &c) in assignment.iter().enumerate() {
            cell_items[cursor[c as usize] as usize] = v as u32;
            cursor[c as usize] += 1;
        }

        // Probing centroids: the exact mean of each non-empty cell,
        // accumulated serially in ascending item order (fixed rounding
        // schedule). A sampled-path cell that attracted no catalog items
        // keeps its trained centroid; search skips empty cells anyway.
        let mut centroids = trained.unwrap_or_else(|| Matrix::zeros(nlist, dim));
        for c in 0..nlist {
            let (a, b) = (cell_offsets[c] as usize, cell_offsets[c + 1] as usize);
            if a == b {
                continue;
            }
            let row = centroids.row_mut(c);
            row.fill(0.0);
            for &v in &cell_items[a..b] {
                ops::axpy(1.0, emb.row(v as usize), row);
            }
            ops::scale(row, 1.0 / (b - a) as f32);
        }

        IvfIndex { dim, centroids, cell_offsets, cell_items, item_cell: assignment }
    }

    /// Embedding width the index was built over.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of cells (including empty ones).
    pub fn nlist(&self) -> usize {
        self.cell_offsets.len() - 1
    }

    /// Number of indexed items.
    pub fn len(&self) -> usize {
        self.cell_items.len()
    }

    /// Whether the index holds no items.
    pub fn is_empty(&self) -> bool {
        self.cell_items.is_empty()
    }

    /// The cell `item` was assigned to.
    pub fn cell_of(&self, item: ItemId) -> usize {
        self.item_cell[item.0 as usize] as usize
    }

    /// Items of cell `c`, ascending.
    pub fn cell(&self, c: usize) -> &[u32] {
        &self.cell_items[self.cell_offsets[c] as usize..self.cell_offsets[c + 1] as usize]
    }

    /// The trained cell centroids (`nlist × dim`), e.g. for determinism
    /// assertions across thread counts.
    pub fn centroids(&self) -> &Matrix {
        &self.centroids
    }

    /// Ranks every non-empty cell by `dot(q, centroid)` into `cells` and
    /// keeps the best `nprobe` (same tie-break as item ranking: score
    /// descending, cell id ascending).
    fn rank_cells(&self, q: &[f32], nprobe: usize, cells: &mut Vec<(f32, u32)>) {
        cells.clear();
        for c in 0..self.nlist() {
            if self.cell_offsets[c] < self.cell_offsets[c + 1] {
                cells.push((ops::dot(q, self.centroids.row(c)), c as u32));
            }
        }
        select_top_k(cells, nprobe.max(1));
    }

    /// The cells `user`'s query would probe, best first — the ablation
    /// hook: cold-item experiments need to know how often the target
    /// item's cell is actually visited.
    pub fn probed_cells<E: EmbeddingEngine + ?Sized>(
        &self,
        engine: &E,
        user: UserId,
        nprobe: usize,
    ) -> Vec<u32> {
        ANN_SCRATCH.with(|s| {
            let (scratch, _) = &mut *s.borrow_mut();
            let mut q = scratch.take(self.dim);
            engine.query_embedding_into(user, &mut q);
            let mut cells = scratch.take_pairs();
            self.rank_cells(&q, nprobe, &mut cells);
            let out = cells.iter().map(|&(_, c)| c).collect();
            scratch.put(q);
            scratch.put_pairs(cells);
            out
        })
    }

    /// Probed Top-k for one user with caller-provided buffers: rank cells,
    /// gather unseen candidates from the probed posting lists, exact-score
    /// them through `score_items`, rank through the shared
    /// [`select_top_k`] tie-break.
    pub fn top_k_with<E: EmbeddingEngine + ?Sized>(
        &self,
        engine: &E,
        user: UserId,
        k: usize,
        nprobe: usize,
        scratch: &mut Scratch,
        items: &mut Vec<ItemId>,
    ) -> Vec<ItemId> {
        let mut q = scratch.take(self.dim);
        engine.query_embedding_into(user, &mut q);
        let mut cand = scratch.take_pairs();
        self.rank_cells(&q, nprobe, &mut cand);

        items.clear();
        for &(_, cell) in cand.iter() {
            let c = cell as usize;
            let (a, b) = (self.cell_offsets[c] as usize, self.cell_offsets[c + 1] as usize);
            for &v in &self.cell_items[a..b] {
                if !engine.is_seen(user, ItemId(v)) {
                    items.push(ItemId(v));
                }
            }
        }

        let mut scores = scratch.take(items.len());
        engine.score_items(user, items, &mut scores);
        // The cell list is spent; reuse its buffer for item candidates.
        cand.clear();
        for (i, &v) in items.iter().enumerate() {
            cand.push((scores[i], v.0));
        }
        select_top_k(&mut cand, k);
        let out = cand.iter().map(|&(_, v)| ItemId(v)).collect();
        scratch.put(q);
        scratch.put(scores);
        scratch.put_pairs(cand);
        out
    }

    /// Probed Top-k over the calling thread's buffer pool.
    pub fn top_k<E: EmbeddingEngine + ?Sized>(
        &self,
        engine: &E,
        user: UserId,
        k: usize,
        nprobe: usize,
    ) -> Vec<ItemId> {
        ANN_SCRATCH.with(|s| {
            let (scratch, items) = &mut *s.borrow_mut();
            self.top_k_with(engine, user, k, nprobe, scratch, items)
        })
    }

    /// Batched probed Top-k. Users are independent queries, so the batch
    /// splits across the `ca_par` fixed chunk grid once it is large enough
    /// to pay for thread spawn — results are bitwise identical at any
    /// `CA_THREADS`, and element-for-element equal to the sequential loop.
    // ca-audit: allow(nested-vec) — k-sized per-query batch result, not dataset-scale state
    pub fn batch_top_k<E: EmbeddingEngine + Sync + ?Sized>(
        &self,
        engine: &E,
        users: &[UserId],
        k: usize,
        nprobe: usize,
    ) -> Vec<Vec<ItemId>> {
        let avg_cell = self.cell_items.len() / self.nlist().max(1);
        let est_cells = users.len().saturating_mul(avg_cell.saturating_mul(nprobe.max(1)));
        let threads = ca_par::threads().min(users.len());
        if users.len() < PAR_MIN_USERS || est_cells < PAR_MIN_CELLS || threads <= 1 {
            return users.iter().map(|&u| self.top_k(engine, u, k, nprobe)).collect();
        }
        let chunks: Vec<&[UserId]> =
            ca_par::even_chunks(users.len(), threads).into_iter().map(|r| &users[r]).collect();
        ca_par::map(&chunks, |_, chunk| {
            chunk.iter().map(|&u| self.top_k(engine, u, k, nprobe)).collect::<Vec<_>>()
        })
        .into_iter()
        .flatten()
        .collect()
    }
}

/// The retrieval dispatch every embedding-backed recommender routes
/// through: `Exact` (or a missing index) falls back to the exact engine's
/// [`auto_batch_top_k`]; `Ivf` probes the index with the mode's `nprobe`.
// ca-audit: allow(nested-vec) — k-sized per-query batch result, not dataset-scale state
pub fn retrieve_batch_top_k<E: EmbeddingEngine + Sync + ?Sized>(
    engine: &E,
    index: Option<&IvfIndex>,
    users: &[UserId],
    k: usize,
    mode: RetrievalMode,
) -> Vec<Vec<ItemId>> {
    match (mode, index) {
        (RetrievalMode::Ivf { nprobe, .. }, Some(idx)) => idx.batch_top_k(engine, users, k, nprobe),
        _ => auto_batch_top_k(engine, users, k),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_recsys::ScoringEngine;

    /// Deterministic toy embedding engine: `score(u, v) = dot(p_u, q_v)`
    /// with hash-derived embeddings; user `u` has seen `v ≡ u (mod 11)`.
    pub(crate) struct ToyEmb {
        pub users: Matrix,
        pub items: Matrix,
    }

    impl ToyEmb {
        pub fn new(n_users: usize, n_items: usize, dim: usize, seed: u64) -> Self {
            let gen = |r: usize, c: usize, salt: u64| {
                let h = ca_par::split_seed(seed ^ salt, (r * 131 + c) as u64);
                ((h % 2000) as f32 / 1000.0) - 1.0
            };
            ToyEmb {
                users: Matrix::from_fn(n_users, dim, |r, c| gen(r, c, 0xA)),
                items: Matrix::from_fn(n_items, dim, |r, c| gen(r, c, 0xB)),
            }
        }
    }

    impl ScoringEngine for ToyEmb {
        fn catalog_len(&self) -> usize {
            self.items.rows()
        }
        fn score_batch(&self, users: &[UserId], out: &mut Matrix) {
            for (i, &u) in users.iter().enumerate() {
                for v in 0..self.items.rows() {
                    out[(i, v)] = ops::dot(self.users.row(u.0 as usize), self.items.row(v));
                }
            }
        }
        fn is_seen(&self, user: UserId, item: ItemId) -> bool {
            item.0 % 11 == user.0 % 11
        }
    }

    impl EmbeddingEngine for ToyEmb {
        fn embedding_dim(&self) -> usize {
            self.items.cols()
        }
        fn item_embedding_into(&self, item: ItemId, out: &mut [f32]) {
            out.copy_from_slice(self.items.row(item.0 as usize));
        }
        fn query_embedding_into(&self, user: UserId, out: &mut [f32]) {
            out.copy_from_slice(self.users.row(user.0 as usize));
        }
        fn score_items(&self, user: UserId, items: &[ItemId], out: &mut [f32]) {
            for (o, &v) in out.iter_mut().zip(items) {
                *o = ops::dot(self.users.row(user.0 as usize), self.items.row(v.0 as usize));
            }
        }
    }

    fn toy_index(engine: &ToyEmb, nlist: usize) -> IvfIndex {
        IvfIndex::build(engine, &IvfConfig::new(nlist, 1))
    }

    #[test]
    fn csr_layout_is_a_partition_with_sorted_cells() {
        let engine = ToyEmb::new(4, 500, 8, 7);
        let idx = toy_index(&engine, 16);
        assert_eq!(idx.len(), 500);
        assert_eq!(idx.nlist(), 16);
        let mut seen = vec![false; 500];
        for c in 0..idx.nlist() {
            let cell = idx.cell(c);
            assert!(cell.windows(2).all(|w| w[0] < w[1]), "cell {c} not sorted");
            for &v in cell {
                assert!(!seen[v as usize], "item {v} in two cells");
                seen[v as usize] = true;
                assert_eq!(idx.cell_of(ItemId(v)), c);
            }
        }
        assert!(seen.iter().all(|&s| s), "every item must land in exactly one cell");
    }

    #[test]
    fn balanced_build_has_cells_within_one() {
        let engine = ToyEmb::new(4, 160, 8, 3);
        let idx = toy_index(&engine, 10); // 160 ≤ train_cap → balanced path
        for c in 0..idx.nlist() {
            assert_eq!(idx.cell(c).len(), 16, "balanced cells must be even");
        }
    }

    #[test]
    fn sampled_build_partitions_large_catalogs() {
        let mut cfg = IvfConfig::new(8, 2);
        cfg.train_cap = 64; // force the sampled path on a 300-item catalog
        let engine = ToyEmb::new(4, 300, 8, 5);
        let idx = IvfIndex::build(&engine, &cfg);
        assert_eq!(idx.len(), 300);
        assert_eq!((0..idx.nlist()).map(|c| idx.cell(c).len()).sum::<usize>(), 300);
    }

    #[test]
    fn full_probe_matches_the_exact_oracle_bitwise() {
        let engine = ToyEmb::new(13, 400, 8, 11);
        let idx = toy_index(&engine, 12);
        let users: Vec<UserId> = (0..13u32).map(UserId).collect();
        let exact = auto_batch_top_k(&engine, &users, 20);
        // Probing every cell leaves pruning no room: identical output.
        assert_eq!(idx.batch_top_k(&engine, &users, 20, 12), exact);
        // And the dispatch helper agrees in both modes.
        let mode = RetrievalMode::Ivf { nlist: 12, nprobe: 12 };
        assert_eq!(retrieve_batch_top_k(&engine, Some(&idx), &users, 20, mode), exact);
        assert_eq!(
            retrieve_batch_top_k(&engine, Some(&idx), &users, 20, RetrievalMode::Exact),
            exact
        );
        assert_eq!(retrieve_batch_top_k(&engine, None, &users, 20, mode), exact);
    }

    #[test]
    fn probed_search_returns_k_unseen_items_from_probed_cells() {
        let engine = ToyEmb::new(6, 400, 8, 19);
        let idx = toy_index(&engine, 16);
        for u in 0..6u32 {
            let probed = idx.probed_cells(&engine, UserId(u), 4);
            assert_eq!(probed.len(), 4);
            let top = idx.top_k(&engine, UserId(u), 10, 4);
            assert_eq!(top.len(), 10);
            for &v in &top {
                assert!(!engine.is_seen(UserId(u), v), "seen item {v:?} recommended");
                assert!(probed.contains(&(idx.cell_of(v) as u32)), "item outside probed cells");
            }
        }
    }

    #[test]
    fn build_and_search_are_thread_count_invariant() {
        let mut cfg = IvfConfig::new(8, 3);
        cfg.train_cap = 64; // sampled path exercises the parallel assign
        let engine = ToyEmb::new(24, 300, 8, 23);
        let users: Vec<UserId> = (0..24u32).map(UserId).collect();
        let baseline_idx = IvfIndex::build(&engine, &cfg);
        let baseline = baseline_idx.batch_top_k(&engine, &users, 10, cfg.nprobe);
        for threads in [1usize, 2, 4, 7] {
            ca_par::set_threads(Some(threads));
            let idx = IvfIndex::build(&engine, &cfg);
            assert_eq!(idx.item_cell, baseline_idx.item_cell, "assignment @ {threads} threads");
            assert_eq!(idx.centroids, baseline_idx.centroids, "centroids @ {threads} threads");
            assert_eq!(
                idx.batch_top_k(&engine, &users, 10, cfg.nprobe),
                baseline,
                "search @ {threads} threads"
            );
        }
        ca_par::set_threads(None);
    }

    #[test]
    fn nprobe_and_k_edge_cases() {
        let engine = ToyEmb::new(3, 120, 8, 29);
        let idx = toy_index(&engine, 6);
        // nprobe = 0 is clamped to one probed cell.
        assert!(!idx.top_k(&engine, UserId(0), 5, 0).is_empty());
        // nprobe beyond nlist probes everything.
        let all = idx.top_k(&engine, UserId(0), 5, 100);
        assert_eq!(all, idx.top_k(&engine, UserId(0), 5, 6));
        // k = 0 yields an empty list.
        assert!(idx.top_k(&engine, UserId(0), 0, 3).is_empty());
    }

    #[test]
    fn config_mode_roundtrip() {
        let cfg = IvfConfig::new(64, 4);
        assert_eq!(IvfConfig::from_mode(cfg.mode()), Some(cfg));
        assert_eq!(IvfConfig::from_mode(RetrievalMode::Exact), None);
    }
}
