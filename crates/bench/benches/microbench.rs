//! Criterion microbenches for the performance-critical substrates.
//!
//! `selection_decision` is the quantitative backing for the paper's §5.2
//! claim that the flat PolicyNetwork is infeasible at Netflix scale: the
//! per-decision cost of the flat softmax grows linearly with the number of
//! source users, while the hierarchical walk grows logarithmically.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use copyattack::cluster::{ClusterTree, TreeMask};
use copyattack::core::selection::{FlatPolicy, HierarchicalPolicy};
use copyattack::datagen::{generate, CrossDomainConfig};
use copyattack::gnn::{PinSageModel, PinSageRecommender};
use copyattack::mf::BprConfig;
use copyattack::recsys::{split_dataset, BlackBoxRecommender, ItemId, UserId};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn embeddings(n: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| (0..dim).map(|_| copyattack::tensor::gaussian(&mut rng, 0.0, 1.0)).collect())
        .collect()
}

fn bench_selection_decision(c: &mut Criterion) {
    let mut group = c.benchmark_group("selection_decision");
    for &n_users in &[1_000usize, 4_000, 16_000] {
        let emb = embeddings(n_users, 8, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let tree = ClusterTree::build_with_depth(&emb, 3, &mut rng);
        let hier = HierarchicalPolicy::new(&mut rng, tree, 8, 16);
        let mask = TreeMask::allow_all(hier.tree());
        let flat = FlatPolicy::new(&mut rng, n_users, 8, 16);
        let flat_mask = vec![true; n_users];
        let q = vec![0.1f32; 8];

        group.bench_with_input(BenchmarkId::new("hierarchical", n_users), &n_users, |b, _| {
            let mut r = StdRng::seed_from_u64(3);
            b.iter(|| black_box(hier.select(&q, &[], &mask, &mut r).user))
        });
        group.bench_with_input(BenchmarkId::new("flat", n_users), &n_users, |b, _| {
            let mut r = StdRng::seed_from_u64(3);
            b.iter(|| black_box(flat.select(&q, &[], &flat_mask, &mut r).user))
        });
    }
    group.finish();
}

fn bench_tree_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("tree_build");
    group.sample_size(10);
    for &n_users in &[1_000usize, 4_000] {
        let emb = embeddings(n_users, 8, 4);
        group.bench_with_input(BenchmarkId::from_parameter(n_users), &n_users, |b, _| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(5);
                black_box(ClusterTree::build_with_depth(&emb, 3, &mut rng).n_internal())
            })
        });
    }
    group.finish();
}

fn bench_gnn_foldin(c: &mut Criterion) {
    let world = generate(&CrossDomainConfig::small(9));
    let mut rng = StdRng::seed_from_u64(6);
    let split = split_dataset(&world.target, 0.1, &mut rng);
    let model = PinSageModel::with_random_features(
        split.train.n_items(),
        copyattack::gnn::GnnConfig::default(),
    );
    let rec = PinSageRecommender::deploy(model, split.train.clone());
    let profile: Vec<ItemId> = world.target.profile(UserId(0)).to_vec();
    c.bench_function("gnn_inject_foldin", |b| {
        b.iter_batched(
            || rec.clone(),
            |mut r| black_box(r.inject_user(&profile)),
            criterion::BatchSize::LargeInput,
        )
    });
    c.bench_function("gnn_top20_query", |b| b.iter(|| black_box(rec.top_k(UserId(3), 20))));
}

fn bench_mf_training(c: &mut Criterion) {
    let world = generate(&CrossDomainConfig::tiny(10));
    c.bench_function("bpr_epoch_tiny", |b| {
        b.iter(|| {
            let cfg = BprConfig { max_epochs: 1, seed: 1, ..Default::default() };
            black_box(copyattack::mf::train(&world.source, &cfg).item_bias[0])
        })
    });
}

fn bench_masked_softmax(c: &mut Criterion) {
    let logits: Vec<f32> = (0..512).map(|i| (i as f32 * 0.37).sin()).collect();
    let mask: Vec<bool> = (0..512).map(|i| i % 3 != 0).collect();
    c.bench_function("masked_softmax_512", |b| {
        b.iter(|| black_box(copyattack::tensor::ops::masked_softmax(&logits, &mask)))
    });
}

criterion_group!(
    benches,
    bench_selection_decision,
    bench_tree_build,
    bench_gnn_foldin,
    bench_mf_training,
    bench_masked_softmax
);
criterion_main!(benches);
