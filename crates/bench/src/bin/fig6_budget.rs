//! Figure 6 (supplement): effect of the profile budget Δ on ML20M-NF.
//!
//! Same sweep as `fig5_budget` with the large preset as the default.
//! The PolicyNetwork baseline is omitted, as in the paper ("unable to
//! finish in a reasonable time limit of 48 hours").

fn main() {
    copyattack_bench::budget_sweep::run("ml20m", "fig6");
}
