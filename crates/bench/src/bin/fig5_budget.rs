//! Figures 5 & 6: effect of the profile budget Δ.
//!
//! Sweeps the number of copied profiles and reports HR@20 / NDCG@20 for
//! RandomAttack, TargetAttack-{40,70,100}, and CopyAttack. Figure 5 is the
//! ML10M-FX panel (`--preset=ml10m`, the default); Figure 6 is ML20M-NF
//! (`--preset=ml20m`, or use the `fig6_budget` alias binary).
//!
//! ```text
//! cargo run --release -p copyattack-bench --bin fig5_budget -- \
//!     --preset=ml10m --items=10 --budgets=3,9,15,21,27,33,39,45
//! ```

fn main() {
    copyattack_bench::budget_sweep::run("ml10m", "fig5");
}
