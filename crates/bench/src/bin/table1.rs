//! Table 1: statistics of the two cross-domain datasets.
//!
//! `cargo run --release -p copyattack-bench --bin table1`

use copyattack::datagen::{generate, CrossDomainConfig};
use copyattack_bench::{print_table, write_csv, Args};

fn main() {
    let args = Args::parse();
    let seed: u64 = args.get_parse("seed", 42);

    let mut rows = Vec::new();
    for (label, cfg) in [
        ("ML10M-FX-like", CrossDomainConfig::ml10m_fx_like(seed)),
        ("ML20M-NF-like", CrossDomainConfig::ml20m_nf_like(seed)),
    ] {
        eprintln!("generating {label} ...");
        let world = generate(&cfg);
        let s = world.stats();
        rows.push(vec![
            label.to_string(),
            s.target_users.to_string(),
            s.target_items.to_string(),
            s.target_interactions.to_string(),
            s.source_users.to_string(),
            s.overlap_items.to_string(),
            s.source_interactions.to_string(),
        ]);
    }
    let header = [
        "dataset",
        "target users",
        "target items",
        "target inter.",
        "source users",
        "overlap items",
        "source inter.",
    ];
    print_table("Table 1: dataset statistics (scaled presets)", &header, &rows);
    write_csv("table1.csv", &header, &rows);
    println!("\npaper (full scale): ML10M-FX 19267/6984/437746 + 93702/5815/4680700");
    println!("                    ML20M-NF 38087/8325/838491 + 478471/5193/62937958");
}
