//! Table 2: performance comparison of attacking methods.
//!
//! For every method row of the paper's Table 2, attacks `--items` cold
//! target items on the chosen preset and reports HR@{20,10,5},
//! NDCG@{20,10,5}, and the average number of items per injected profile.
//!
//! ```text
//! cargo run --release -p copyattack-bench --bin table2 -- \
//!     --preset=ml10m --items=50 --episodes=60 [--skip-flat=true]
//! ```
//!
//! `--skip-flat=true` replaces the PolicyNetwork row with "–", mirroring
//! the paper's ML20M-NF entry (the flat baseline is the one that does not
//! scale; see the Criterion bench `selection` for the per-decision cost).

use copyattack::pipeline::{Method, Pipeline};
use copyattack_bench::{f1, f4, preset, print_table, write_csv, Args};

fn main() {
    let args = Args::parse();
    let preset_name = args.get("preset", "small");
    let seed: u64 = args.get_parse("seed", 42);
    let mut cfg = preset(&preset_name, seed);
    let items: usize = args.get_parse("items", cfg.n_target_items.min(20));
    cfg.attack.config.episodes = args.get_parse("episodes", cfg.attack.config.episodes);
    cfg.attack.config.reward_k = args.get_parse("reward-k", cfg.attack.config.reward_k);
    let skip_flat: bool = args.get_parse("skip-flat", preset_name == "ml20m");

    eprintln!("building pipeline for preset {preset_name} (seed {seed}) ...");
    let t0 = std::time::Instant::now();
    let pipe = Pipeline::build(&cfg);
    eprintln!(
        "pipeline ready in {:.1}s: target model val HR@10 = {:.4}, {} attackable cold items",
        t0.elapsed().as_secs_f64(),
        pipe.train_report.best_val_hr10,
        pipe.target_items.len()
    );
    let items = items.min(pipe.target_items.len());

    let mut rows = Vec::new();
    for method in Method::table2_rows() {
        if method == Method::PolicyNetwork && skip_flat {
            rows.push(vec![
                method.label(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
            ]);
            eprintln!("{:<22} skipped (48h-infeasible row of the paper)", method.label());
            continue;
        }
        let row = pipe.run_method_over_targets(method, items);
        eprintln!(
            "{:<22} HR@20 {:.4}  ({:.1}s over {items} items)",
            method.label(),
            row.metrics.hr(20),
            row.attack_seconds
        );
        rows.push(vec![
            method.label(),
            f4(row.metrics.hr(20)),
            f4(row.metrics.hr(10)),
            f4(row.metrics.hr(5)),
            f4(row.metrics.ndcg(20)),
            f4(row.metrics.ndcg(10)),
            f4(row.metrics.ndcg(5)),
            f1(row.avg_items_per_profile),
            format!("{:.1}", row.attack_seconds),
        ]);
    }

    let header = [
        "method",
        "HR@20",
        "HR@10",
        "HR@5",
        "NDCG@20",
        "NDCG@10",
        "NDCG@5",
        "avg items/profile",
        "seconds",
    ];
    print_table(
        &format!("Table 2: attack comparison on {preset_name} ({items} target items)"),
        &header,
        &rows,
    );
    write_csv(&format!("table2_{preset_name}.csv"), &header, &rows);
}
