//! Figure 4: effect of item popularity on attack vulnerability.
//!
//! Groups the target catalog into 10 popularity deciles, samples target
//! items from each group, attacks them with CopyAttack, and reports HR@20
//! and NDCG@20 per group — "what kinds of items are vulnerable to attack".
//!
//! ```text
//! cargo run --release -p copyattack-bench --bin fig4_popularity -- \
//!     --preset=ml10m --per-group=5
//! ```

use copyattack::core::AttackConfig;
use copyattack::pipeline::{attackable_from_group, Method, Pipeline};
use copyattack::recsys::popularity::PopularityGroups;
use copyattack_bench::{f4, preset, print_table, write_csv, Args};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = Args::parse();
    let preset_name = args.get("preset", "small");
    let seed: u64 = args.get_parse("seed", 42);
    let mut cfg = preset(&preset_name, seed);
    cfg.attack.config.episodes = args.get_parse("episodes", cfg.attack.config.episodes);
    let per_group: usize = args.get_parse("per-group", 5);
    let n_groups: usize = args.get_parse("groups", 10);

    eprintln!("building pipeline for preset {preset_name} ...");
    let pipe = Pipeline::build(&cfg);
    let groups = PopularityGroups::build(&pipe.world.target, n_groups);
    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(55));

    let mut rows = Vec::new();
    for g in 0..n_groups {
        // The paper samples 50 target items per decile; items must still
        // exist in the source domain to be attackable by CopyAttack.
        let items = attackable_from_group(
            &pipe.world,
            groups.group(g),
            per_group,
            cfg.min_source_pop,
            &mut rng,
        );
        if items.is_empty() {
            eprintln!("group {g}: no attackable items (no source carriers), skipping");
            rows.push(vec![format!("{}%", (g + 1) * 10), "-".into(), "-".into(), "0".into()]);
            continue;
        }
        let attack_cfg = AttackConfig { ..cfg.attack.config.clone() };
        let row = pipe.run_method_over_items(Method::CopyAttack, &items, &attack_cfg);
        eprintln!(
            "group {g} (top {}%): HR@20 {:.4} over {} items",
            (g + 1) * 10,
            row.metrics.hr(20),
            items.len()
        );
        rows.push(vec![
            format!("{}%", (g + 1) * 10),
            f4(row.metrics.hr(20)),
            f4(row.metrics.ndcg(20)),
            items.len().to_string(),
        ]);
    }
    let header = ["popularity group (top X%)", "HR@20", "NDCG@20", "n items"];
    print_table(&format!("Figure 4: effect of item popularity on {preset_name}"), &header, &rows);
    write_csv(&format!("fig4_popularity_{preset_name}.csv"), &header, &rows);
}
