//! ANN retrieval bench: exact full-catalog Top-k vs the `ca-ann` IVF
//! index, on planted-topic synthetic catalogs at 100k and 1M items.
//!
//! Three measurements:
//!
//! 1. **Latency** — per-query Top-20 time for the exact engine
//!    (`single_top_k`, a full-catalog scan) and for the IVF index across
//!    an `nprobe` sweep (best-of-3 passes over a fixed query set).
//! 2. **Recall** — overlap of the IVF Top-k with the exact oracle's
//!    Top-k (recall@10 / recall@20 averaged over the query set). Because
//!    candidates are scored by the same kernel, cell pruning is the only
//!    approximation — recall isolates exactly what pruning costs.
//! 3. **Ablation** — the paper's CopyAttack campaign on the tiny preset
//!    with the platform serving `Exact` vs `Ivf` Top-k: does the attack
//!    still promote a cold target item when the reward signal passes
//!    through approximate retrieval, given that cold items land in
//!    whatever cell their (untrained) embedding happens to fall into?
//!
//! ```text
//! cargo run --release -p copyattack-bench --bin ann
//! cargo run --release -p copyattack-bench --bin ann -- --smoke=1
//! ```
//!
//! `--smoke=1` runs a 20k-item catalog with one probe setting and asserts
//! the recall floor — the CI guard that the index stays healthy.

use std::time::Instant;

use copyattack::ann::{IvfConfig, IvfIndex};
use copyattack::par;
use copyattack::pipeline::{Method, Pipeline, PipelineConfig};
use copyattack::recsys::{
    single_top_k, EmbeddingEngine, ItemId, RetrievalMode, ScoringEngine, UserId,
};
use copyattack::tensor::{ops, Matrix};
use copyattack_bench::{print_table, results_dir, Args};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Embedding width — matches the ml-scale MF/GNN presets.
const DIM: usize = 32;
/// Planted mixture components: items and queries cluster around shared
/// topic centroids, the structure an inverted file exploits.
const TOPICS: usize = 64;
/// Queries per latency/recall pass.
const QUERIES: usize = 32;
/// Ranking depth (the paper's HR@20 cut).
const K: usize = 20;

/// Synthetic engine over a planted topic mixture: `score(u, v) =
/// dot(p_u, q_v)` with every embedding drawn as `centroid[topic] +
/// uniform noise`. The exact scan, the candidate scorer, and the index
/// all see the same vectors, so the oracle comparison is airtight.
struct SynthEngine {
    users: Matrix,
    items: Matrix,
}

impl SynthEngine {
    fn new(n_users: usize, n_items: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let topics = Matrix::from_fn(TOPICS, DIM, |_, _| rng.gen_range(-1.0f32..1.0));
        let draw = |n: usize, rng: &mut StdRng| {
            let mut m = Matrix::zeros(n, DIM);
            for r in 0..n {
                let t = rng.gen_range(0..TOPICS);
                let row = m.row_mut(r);
                for (c, x) in row.iter_mut().enumerate() {
                    *x = topics[(t, c)] + rng.gen_range(-0.25f32..0.25);
                }
            }
            m
        };
        let items = draw(n_items, &mut rng);
        let users = draw(n_users, &mut rng);
        SynthEngine { users, items }
    }
}

impl ScoringEngine for SynthEngine {
    fn catalog_len(&self) -> usize {
        self.items.rows()
    }

    fn score_batch(&self, users: &[UserId], out: &mut Matrix) {
        for (i, &u) in users.iter().enumerate() {
            let p = self.users.row(u.idx());
            for v in 0..self.items.rows() {
                out[(i, v)] = ops::dot(p, self.items.row(v));
            }
        }
    }

    fn is_seen(&self, _user: UserId, _item: ItemId) -> bool {
        false
    }
}

impl EmbeddingEngine for SynthEngine {
    fn embedding_dim(&self) -> usize {
        DIM
    }

    fn item_embedding_into(&self, item: ItemId, out: &mut [f32]) {
        out.copy_from_slice(self.items.row(item.idx()));
    }

    fn query_embedding_into(&self, user: UserId, out: &mut [f32]) {
        out.copy_from_slice(self.users.row(user.idx()));
    }

    fn score_items(&self, user: UserId, items: &[ItemId], out: &mut [f32]) {
        let p = self.users.row(user.idx());
        for (o, &v) in out.iter_mut().zip(items) {
            *o = ops::dot(p, self.items.row(v.idx()));
        }
    }
}

/// Best-of-`reps` wall time of one full pass of `f` over the query set,
/// in seconds.
fn best_of(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

/// Fraction of the oracle's top-`k` prefix that `approx` recovered.
fn recall_at(exact: &[ItemId], approx: &[ItemId], k: usize) -> f64 {
    let want = &exact[..k.min(exact.len())];
    let got = &approx[..k.min(approx.len())];
    want.iter().filter(|v| got.contains(v)).count() as f64 / k as f64
}

struct SweepPoint {
    nprobe: usize,
    us: f64,
    speedup: f64,
    recall10: f64,
    recall20: f64,
}

struct CatalogResult {
    n_items: usize,
    build_s: f64,
    exact_us: f64,
    sweep: Vec<SweepPoint>,
}

fn bench_catalog(n_items: usize, nlist: usize, probes: &[usize], seed: u64) -> CatalogResult {
    let engine = SynthEngine::new(QUERIES, n_items, seed);
    let queries: Vec<UserId> = (0..QUERIES as u32).map(UserId).collect();

    let t = Instant::now();
    let index = IvfIndex::build(&engine, &IvfConfig::new(nlist, 1));
    let build_s = t.elapsed().as_secs_f64();

    let oracle: Vec<Vec<ItemId>> = queries.iter().map(|&u| single_top_k(&engine, u, K)).collect();
    let exact_s = best_of(3, || {
        for &u in &queries {
            std::hint::black_box(single_top_k(&engine, u, K));
        }
    });
    let exact_us = exact_s / QUERIES as f64 * 1e6;

    let mut sweep = Vec::new();
    for &nprobe in probes {
        let lists: Vec<Vec<ItemId>> =
            queries.iter().map(|&u| index.top_k(&engine, u, K, nprobe)).collect();
        let ivf_s = best_of(3, || {
            for &u in &queries {
                std::hint::black_box(index.top_k(&engine, u, K, nprobe));
            }
        });
        let us = ivf_s / QUERIES as f64 * 1e6;
        let (mut r10, mut r20) = (0.0, 0.0);
        for (exact, approx) in oracle.iter().zip(&lists) {
            r10 += recall_at(exact, approx, 10);
            r20 += recall_at(exact, approx, K);
        }
        sweep.push(SweepPoint {
            nprobe,
            us,
            speedup: exact_us / us,
            recall10: r10 / QUERIES as f64,
            recall20: r20 / QUERIES as f64,
        });
    }
    CatalogResult { n_items, build_s, exact_us, sweep }
}

struct AblationArm {
    hr20: f32,
    ndcg20: f32,
    avg_items: f32,
}

/// Runs the CopyAttack campaign on the tiny preset under one retrieval
/// mode and reports the Table-2-style promotion row.
fn ablation_arm(retrieval: RetrievalMode, targets: usize, seed: u64) -> AblationArm {
    let mut cfg = PipelineConfig::tiny(seed);
    cfg.retrieval = retrieval;
    let pipe = Pipeline::build(&cfg);
    let row = pipe.run_method_over_targets(Method::CopyAttack, targets);
    AblationArm {
        hr20: row.metrics.hr(20),
        ndcg20: row.metrics.ndcg(20),
        avg_items: row.avg_items_per_profile,
    }
}

/// Cold-item cell placement: how big are the cells the attacked (cold)
/// items land in, relative to the mean cell?
fn cold_cell_stats(seed: u64, nlist: usize) -> (f64, Vec<usize>) {
    let cfg = PipelineConfig::tiny(seed);
    let pipe = Pipeline::build(&cfg);
    let index = IvfIndex::build(&pipe.recommender, &IvfConfig::new(nlist, 1));
    let mean = index.len() as f64 / index.nlist() as f64;
    let cells = pipe.target_items.iter().map(|&t| index.cell(index.cell_of(t)).len()).collect();
    (mean, cells)
}

fn main() {
    let args = Args::parse();
    let seed: u64 = args.get_parse("seed", 0x05EE_DA11);

    if args.get_parse("smoke", 0u32) == 1 {
        // CI guard: the index must hold its recall floor on a small
        // planted catalog, fast.
        let t = Instant::now();
        let r = bench_catalog(20_000, 64, &[8], seed);
        let p = &r.sweep[0];
        assert!(p.recall20 >= 0.90, "smoke: recall@20 {:.3} under 0.90 at nprobe=8/64", p.recall20);
        println!(
            "smoke: 20k items, nprobe 8/64: recall@20 {:.3}, {:.0}us vs exact {:.0}us, in {:.1}s",
            p.recall20,
            p.us,
            r.exact_us,
            t.elapsed().as_secs_f64()
        );
        return;
    }

    let nlist: usize = args.get_parse("nlist", 512);
    let probes = [1usize, 2, 4, 8, 16, 32, 64];
    let catalogs = [100_000usize, 1_000_000];

    let mut results = Vec::new();
    for &n in &catalogs {
        let r = bench_catalog(n, nlist, &probes, seed);
        let mut rows = Vec::new();
        for p in &r.sweep {
            rows.push(vec![
                p.nprobe.to_string(),
                format!("{:.0}", p.us),
                format!("{:.1}x", p.speedup),
                format!("{:.3}", p.recall10),
                format!("{:.3}", p.recall20),
            ]);
        }
        print_table(
            &format!(
                "{n} items, nlist {nlist}: IVF vs exact ({:.0}us/query, build {:.1}s)",
                r.exact_us, r.build_s
            ),
            &["nprobe", "us", "speedup", "recall@10", "recall@20"],
            &rows,
        );
        results.push(r);
    }

    println!("\nrunning retrieval ablation (CopyAttack on tiny preset)...");
    let ablation_targets = 3;
    let ivf_mode = RetrievalMode::Ivf { nlist: 8, nprobe: 2 };
    let exact = ablation_arm(RetrievalMode::Exact, ablation_targets, seed);
    let ivf = ablation_arm(ivf_mode, ablation_targets, seed);
    let (mean_cell, target_cells) = cold_cell_stats(seed, 8);
    print_table(
        "ablation: CopyAttack promotion under Exact vs Ivf{nlist:8,nprobe:2} serving",
        &["mode", "hr@20", "ndcg@20", "avg_items"],
        &[
            vec![
                "exact".into(),
                format!("{:.4}", exact.hr20),
                format!("{:.4}", exact.ndcg20),
                format!("{:.1}", exact.avg_items),
            ],
            vec![
                "ivf".into(),
                format!("{:.4}", ivf.hr20),
                format!("{:.4}", ivf.ndcg20),
                format!("{:.1}", ivf.avg_items),
            ],
        ],
    );
    println!("cold-item cells: sizes {:?} vs mean {:.1}", target_cells, mean_cell);

    let retrieval_json: Vec<String> = results
        .iter()
        .map(|r| {
            let sweep: Vec<String> = r
                .sweep
                .iter()
                .map(|p| {
                    format!(
                        concat!(
                            "        {{\"nprobe\": {}, \"us\": {:.1}, \"speedup\": {:.2}, ",
                            "\"recall10\": {:.4}, \"recall20\": {:.4}}}"
                        ),
                        p.nprobe, p.us, p.speedup, p.recall10, p.recall20
                    )
                })
                .collect();
            format!(
                concat!(
                    "    {{\"items\": {}, \"nlist\": {}, \"dim\": {}, \"queries\": {}, ",
                    "\"build_s\": {:.2}, \"exact_us\": {:.1},\n      \"sweep\": [\n{}\n      ]}}"
                ),
                r.n_items,
                nlist,
                DIM,
                QUERIES,
                r.build_s,
                r.exact_us,
                sweep.join(",\n")
            )
        })
        .collect();
    let cells_json: Vec<String> = target_cells.iter().map(usize::to_string).collect();
    let json = format!(
        concat!(
            "{{\n  \"bench\": \"ann\",\n  \"threads\": {},\n  \"topics\": {},\n",
            "  \"retrieval\": [\n{}\n  ],\n",
            "  \"ablation\": {{\"preset\": \"tiny\", \"method\": \"CopyAttack\", ",
            "\"targets\": {}, \"nlist\": 8, \"nprobe\": 2,\n",
            "    \"exact\": {{\"hr20\": {:.4}, \"ndcg20\": {:.4}, \"avg_items\": {:.2}}},\n",
            "    \"ivf\": {{\"hr20\": {:.4}, \"ndcg20\": {:.4}, \"avg_items\": {:.2}}},\n",
            "    \"cold_cells\": {{\"mean\": {:.2}, \"target_cells\": [{}]}}}}\n}}\n"
        ),
        par::threads(),
        TOPICS,
        retrieval_json.join(",\n"),
        ablation_targets,
        exact.hr20,
        exact.ndcg20,
        exact.avg_items,
        ivf.hr20,
        ivf.ndcg20,
        ivf.avg_items,
        mean_cell,
        cells_json.join(", ")
    );
    let path = results_dir().join("BENCH_ann.json");
    std::fs::write(&path, json).expect("write BENCH_ann.json");
    println!("wrote {}", path.display());
}
