//! Data-plane bench: compact CSR arenas vs the legacy nested-`Vec` layout,
//! and serial vs streaming chunk-seeded dataset generation.
//!
//! Two comparisons, each swept over user counts:
//!
//! 1. **Layout** — build the same deduped interaction data into the CSR
//!    `Dataset` and into an in-bench replica of the pre-refactor nested
//!    model (one `Vec` per profile, one `Vec` per item's users), then scan
//!    both ways. Reports peak RSS (`VmHWM`) and build/scan throughput.
//! 2. **Datagen** — `generate` (serial, bitwise-pinned stream) vs
//!    `generate_streaming` (chunk-seeded, runs on `ca-par`). Reports
//!    interactions generated per second.
//!
//! `VmHWM` is monotone over a process's lifetime, so every scenario runs
//! in its own subprocess (`--scenario=`) and reports one `RESULT {json}`
//! line; the parent collects them into `results/BENCH_dataplane.json`.
//!
//! ```text
//! cargo run --release -p copyattack-bench --bin dataplane
//! cargo run --release -p copyattack-bench --bin dataplane -- --smoke=1
//! ```
//!
//! `--smoke=1` runs only the 1M-user streaming-generation scenario (small
//! catalog, short profiles) — the CI guard that large-scale generation
//! stays healthy.

use std::process::Command;
use std::time::Instant;

use copyattack::datagen::{generate, generate_streaming, CrossDomainConfig};
use copyattack::par;
use copyattack::recsys::{DatasetBuilder, ItemId, UserId};
use copyattack_bench::{print_table, results_dir, Args};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Catalog for the layout comparison; profiles are short (2..=10 items) so
/// per-profile overhead — where nested layouts pay — is in proportion.
const LAYOUT_CATALOG: usize = 2_000;

fn vm_hwm_kb() -> u64 {
    let status = std::fs::read_to_string("/proc/self/status").expect("read /proc/self/status");
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|v| v.split_whitespace().next())
        .and_then(|v| v.parse().ok())
        .expect("VmHWM in /proc/self/status")
}

fn fill_profile(rng: &mut StdRng, buf: &mut Vec<ItemId>) {
    buf.clear();
    let len = rng.gen_range(2..=10);
    for _ in 0..len {
        buf.push(ItemId(rng.gen_range(0..LAYOUT_CATALOG as u32)));
    }
}

/// In-bench replica of the pre-CSR data model: nested profiles, nested
/// insertion-order inverted index, linear-scan dedup. Kept verbatim so the
/// bench keeps measuring the layout this refactor replaced.
struct NestedModel {
    profiles: Vec<Vec<ItemId>>,
    item_profiles: Vec<Vec<UserId>>,
}

impl NestedModel {
    fn new(n_items: usize) -> Self {
        Self { profiles: Vec::new(), item_profiles: vec![Vec::new(); n_items] }
    }

    fn add(&mut self, raw: &[ItemId]) {
        let uid = UserId(self.profiles.len() as u32);
        let mut kept: Vec<ItemId> = Vec::new();
        for &v in raw {
            if !kept.contains(&v) {
                kept.push(v);
                self.item_profiles[v.idx()].push(uid);
            }
        }
        self.profiles.push(kept);
    }
}

/// One `RESULT` line for the parent to collect.
fn emit(fields: &str) {
    println!("RESULT {{{fields}}}");
}

fn scenario_layout_csr(n_users: usize) {
    let mut rng = StdRng::seed_from_u64(0xDA7A);
    let mut buf = Vec::new();
    let t = Instant::now();
    let mut b = DatasetBuilder::new(LAYOUT_CATALOG);
    for _ in 0..n_users {
        fill_profile(&mut rng, &mut buf);
        b.user(&buf);
    }
    let ds = b.build();
    let build_s = t.elapsed().as_secs_f64();

    let t = Instant::now();
    let mut sink = 0u64;
    for u in ds.users() {
        for &v in ds.profile(u) {
            sink += u64::from(v.0);
        }
    }
    for v in ds.items() {
        sink += ds.item_profile(v).len() as u64;
    }
    let scan_s = t.elapsed().as_secs_f64();
    assert!(sink > 0);
    emit(&format!(
        "\"interactions\": {}, \"build_s\": {build_s:.4}, \"scan_s\": {scan_s:.4}, \"hwm_kb\": {}",
        ds.n_interactions(),
        vm_hwm_kb()
    ));
}

fn scenario_layout_nested(n_users: usize) {
    let mut rng = StdRng::seed_from_u64(0xDA7A);
    let mut buf = Vec::new();
    let t = Instant::now();
    let mut m = NestedModel::new(LAYOUT_CATALOG);
    for _ in 0..n_users {
        fill_profile(&mut rng, &mut buf);
        m.add(&buf);
    }
    let build_s = t.elapsed().as_secs_f64();

    let t = Instant::now();
    let mut sink = 0u64;
    for p in &m.profiles {
        for &v in p {
            sink += u64::from(v.0);
        }
    }
    for ip in &m.item_profiles {
        sink += ip.len() as u64;
    }
    let scan_s = t.elapsed().as_secs_f64();
    assert!(sink > 0);
    emit(&format!(
        "\"interactions\": {}, \"build_s\": {build_s:.4}, \"scan_s\": {scan_s:.4}, \"hwm_kb\": {}",
        m.profiles.iter().map(Vec::len).sum::<usize>(),
        vm_hwm_kb()
    ));
}

/// Generator config scaled to `n_users` target users: small catalog, short
/// profiles, a 1/10-sized source domain — the data plane is the subject,
/// not the latent model.
fn gen_cfg(n_users: usize) -> CrossDomainConfig {
    let mut cfg = CrossDomainConfig::tiny(0xBEEF);
    cfg.n_target_items = 500;
    cfg.n_overlap = 300;
    cfg.target.n_users = n_users;
    cfg.target.profile_len_mean = 6.0;
    cfg.target.profile_len_min = 2;
    cfg.target.profile_len_max = 12;
    cfg.source.n_users = (n_users / 10).max(100);
    cfg.source.profile_len_mean = 6.0;
    cfg.source.profile_len_min = 2;
    cfg.source.profile_len_max = 12;
    cfg
}

fn scenario_gen(n_users: usize, streaming: bool) {
    let cfg = gen_cfg(n_users);
    let t = Instant::now();
    let world = if streaming { generate_streaming(&cfg) } else { generate(&cfg) };
    let gen_s = t.elapsed().as_secs_f64();
    let interactions = world.target.n_interactions() + world.source.n_interactions();
    assert_eq!(world.target.n_users(), n_users);
    emit(&format!(
        "\"interactions\": {interactions}, \"gen_s\": {gen_s:.4}, \"hwm_kb\": {}",
        vm_hwm_kb()
    ));
}

/// Spawns this binary on one scenario and returns the parsed `RESULT`
/// fields as (key, value) pairs.
fn run_child(scenario: &str, n_users: usize) -> Vec<(String, f64)> {
    let exe = std::env::current_exe().expect("current exe");
    let out = Command::new(exe)
        .arg(format!("--scenario={scenario}"))
        .arg(format!("--users={n_users}"))
        .output()
        .expect("spawn scenario subprocess");
    assert!(out.status.success(), "scenario {scenario} ({n_users} users) failed");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let line = stdout
        .lines()
        .find_map(|l| l.strip_prefix("RESULT "))
        .unwrap_or_else(|| panic!("no RESULT line from {scenario}: {stdout}"));
    line.trim_matches(['{', '}'])
        .split(", ")
        .filter_map(|kv| {
            let (k, v) = kv.split_once(": ")?;
            Some((k.trim_matches('"').to_string(), v.parse().ok()?))
        })
        .collect()
}

fn get(fields: &[(String, f64)], key: &str) -> f64 {
    fields.iter().find(|(k, _)| k == key).unwrap_or_else(|| panic!("missing field {key}")).1
}

fn main() {
    let args = Args::parse();
    let scenario = args.get("scenario", "");
    let n_users: usize = args.get_parse("users", 10_000);
    match scenario.as_str() {
        "layout-csr" => return scenario_layout_csr(n_users),
        "layout-nested" => return scenario_layout_nested(n_users),
        "gen-serial" => return scenario_gen(n_users, false),
        "gen-stream" => return scenario_gen(n_users, true),
        "" => {}
        other => panic!("unknown scenario {other:?}"),
    }

    if args.get_parse("smoke", 0u32) == 1 {
        // CI guard: 1M-user streaming generation must finish and stay sane.
        let t = Instant::now();
        scenario_gen(1_000_000, true);
        println!("smoke: 1M-user streaming datagen ok in {:.1}s", t.elapsed().as_secs_f64());
        return;
    }

    let layout_sizes = [10_000usize, 100_000, 1_000_000];
    let gen_sizes = [10_000usize, 100_000, 1_000_000];

    let mut rows = Vec::new();
    let mut layout_cases = Vec::new();
    for &n in &layout_sizes {
        let csr = run_child("layout-csr", n);
        let nested = run_child("layout-nested", n);
        assert_eq!(
            get(&csr, "interactions"),
            get(&nested, "interactions"),
            "layouts must store identical data"
        );
        let reduction = get(&nested, "hwm_kb") / get(&csr, "hwm_kb");
        rows.push(vec![
            n.to_string(),
            format!("{:.0}", get(&csr, "interactions")),
            format!("{:.0}", get(&csr, "hwm_kb")),
            format!("{:.0}", get(&nested, "hwm_kb")),
            format!("{reduction:.2}x"),
            format!("{:.0}", get(&csr, "interactions") / get(&csr, "build_s")),
            format!("{:.0}", get(&csr, "interactions") / get(&csr, "scan_s")),
        ]);
        layout_cases.push(format!(
            concat!(
                "    {{\"users\": {}, \"interactions\": {:.0}, ",
                "\"csr_hwm_kb\": {:.0}, \"nested_hwm_kb\": {:.0}, \"rss_reduction\": {:.3}, ",
                "\"csr_build_s\": {:.4}, \"nested_build_s\": {:.4}, ",
                "\"csr_scan_s\": {:.4}, \"nested_scan_s\": {:.4}}}"
            ),
            n,
            get(&csr, "interactions"),
            get(&csr, "hwm_kb"),
            get(&nested, "hwm_kb"),
            reduction,
            get(&csr, "build_s"),
            get(&nested, "build_s"),
            get(&csr, "scan_s"),
            get(&nested, "scan_s"),
        ));
    }
    print_table(
        "layout: CSR arenas vs nested Vec (per-process VmHWM)",
        &["users", "inter", "csr_kb", "nested_kb", "rss_x", "build_ips", "scan_ips"],
        &rows,
    );

    let mut rows = Vec::new();
    let mut gen_cases = Vec::new();
    for &n in &gen_sizes {
        let serial = run_child("gen-serial", n);
        let stream = run_child("gen-stream", n);
        let serial_ips = get(&serial, "interactions") / get(&serial, "gen_s");
        let stream_ips = get(&stream, "interactions") / get(&stream, "gen_s");
        rows.push(vec![
            n.to_string(),
            format!("{:.0}", get(&serial, "interactions")),
            format!("{serial_ips:.0}"),
            format!("{stream_ips:.0}"),
            format!("{:.2}x", stream_ips / serial_ips),
        ]);
        gen_cases.push(format!(
            concat!(
                "    {{\"target_users\": {}, \"serial_interactions\": {:.0}, ",
                "\"stream_interactions\": {:.0}, \"serial_s\": {:.4}, \"stream_s\": {:.4}, ",
                "\"serial_ips\": {:.0}, \"stream_ips\": {:.0}}}"
            ),
            n,
            get(&serial, "interactions"),
            get(&stream, "interactions"),
            get(&serial, "gen_s"),
            get(&stream, "gen_s"),
            serial_ips,
            stream_ips,
        ));
    }
    print_table(
        "datagen: serial generate vs chunk-seeded generate_streaming",
        &["users", "inter", "serial_ips", "stream_ips", "speedup"],
        &rows,
    );

    let json = format!(
        concat!(
            "{{\n  \"bench\": \"dataplane\",\n  \"threads\": {},\n",
            "  \"layout\": [\n{}\n  ],\n  \"datagen\": [\n{}\n  ]\n}}\n"
        ),
        par::threads(),
        layout_cases.join(",\n"),
        gen_cases.join(",\n"),
    );
    let path = results_dir().join("BENCH_dataplane.json");
    std::fs::write(&path, json).expect("write BENCH_dataplane.json");
    println!("wrote {}", path.display());
}
