//! Figure 3: effect of the hierarchical clustering tree's depth.
//!
//! Sweeps the decision depth `d` of CopyAttack's tree and reports HR@20
//! and NDCG@20 per depth (panels a–d of the figure; run once per preset).
//!
//! ```text
//! cargo run --release -p copyattack-bench --bin fig3_depth -- \
//!     --preset=ml10m --items=20 --depths=2,3,4,5
//! ```

use copyattack::core::AttackConfig;
use copyattack::pipeline::{Method, Pipeline};
use copyattack_bench::{f4, preset, print_table, write_csv, Args};

fn main() {
    let args = Args::parse();
    let preset_name = args.get("preset", "small");
    let seed: u64 = args.get_parse("seed", 42);
    let mut cfg = preset(&preset_name, seed);
    cfg.attack.config.episodes = args.get_parse("episodes", cfg.attack.config.episodes);
    let items: usize = args.get_parse("items", 10);
    let default_depths = if preset_name == "ml20m" { "3,4,5,6,7,8" } else { "2,3,4,5" };
    let depths: Vec<usize> = args
        .get("depths", default_depths)
        .split(',')
        .map(|d| d.parse().expect("bad depth"))
        .collect();

    eprintln!("building pipeline for preset {preset_name} ...");
    let pipe = Pipeline::build(&cfg);
    let items = items.min(pipe.target_items.len());
    let chosen: Vec<_> = pipe.target_items.iter().copied().take(items).collect();

    let mut rows = Vec::new();
    for &d in &depths {
        let attack_cfg = AttackConfig { tree_depth: d, ..cfg.attack.config.clone() };
        let row = pipe.run_method_over_items(Method::CopyAttack, &chosen, &attack_cfg);
        eprintln!(
            "depth {d}: HR@20 {:.4} NDCG@20 {:.4} ({:.1}s)",
            row.metrics.hr(20),
            row.metrics.ndcg(20),
            row.attack_seconds
        );
        rows.push(vec![
            d.to_string(),
            f4(row.metrics.hr(20)),
            f4(row.metrics.ndcg(20)),
            format!("{:.1}", row.attack_seconds),
        ]);
    }
    let header = ["depth", "HR@20", "NDCG@20", "seconds"];
    print_table(
        &format!("Figure 3: effect of tree depth on {preset_name} ({items} target items)"),
        &header,
        &rows,
    );
    write_csv(&format!("fig3_depth_{preset_name}.csv"), &header, &rows);
}
