//! The attack arena: every registered attack crossed with every target
//! platform, with the detector screen on and off.
//!
//! One cell = one (attack, platform, defense) triple, aggregated over
//! `--items` target items. Per cell the arena reports the HR@20 uplift
//! over the clean platform, the query/injection budget the attacker spent,
//! and the z-score detector's precision/recall over the injected profiles
//! at the platform's 99th-percentile false-positive threshold. Both arms
//! route injections through [`ScreenedRecommender`] — the undefended arm
//! simply screens at `+∞`, so profile scores are recorded without any
//! rejections — which keeps the two arms' code paths identical.
//!
//! ```text
//! cargo run --release -p copyattack-bench --bin arena -- --preset=tiny --items=2
//! cargo run --release -p copyattack-bench --bin arena -- --smoke=1   # CI: 2 attacks × 2 platforms
//! ```
//!
//! Writes `results/BENCH_arena.json`.

use copyattack::core::{AttackConfig, AttackEnvironment};
use copyattack::detect::features::PopularityIndex;
use copyattack::detect::{extract_features, ScreenedRecommender, ZScoreDetector};
use copyattack::mf::MfRecommender;
use copyattack::ncf::NcfRecommender;
use copyattack::pipeline::{Pipeline, PipelineConfig};
use copyattack::recsys::knn::ItemKnnRecommender;
use copyattack::recsys::{
    BlackBoxRecommender, ItemId, PopularityRecommender, RankingEval, Scorer, UserId,
};
use copyattack::tensor::Matrix;
use copyattack_bench::{f4, preset, print_table, results_dir, Args};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;

/// The fitted screen shared by every cell: detector, feature geometry and
/// the 99th-percentile threshold on genuine scores.
struct Defense {
    detector: ZScoreDetector,
    pop: PopularityIndex,
    item_emb: Matrix,
    threshold: f32,
    genuine_scores: Vec<f32>,
}

impl Defense {
    fn fit(pipe: &Pipeline, seed: u64) -> Self {
        let clean = &pipe.split.train;
        let pop = PopularityIndex::build(clean);
        let item_emb = copyattack::mf::train(
            clean,
            &copyattack::mf::BprConfig { max_epochs: 10, seed: seed ^ 9, ..Default::default() },
        )
        .item_emb;
        let feats: Vec<_> = (0..clean.n_users() as u32)
            .map(|u| extract_features(clean.profile(UserId(u)), &pop, &item_emb))
            .collect();
        let detector = ZScoreDetector::fit(&feats);
        let genuine_scores: Vec<f32> = feats.iter().map(|f| detector.score(f)).collect();
        let threshold = copyattack::tensor::stats::percentile(&genuine_scores, 99.0);
        Self { detector, pop, item_emb, threshold, genuine_scores }
    }

    /// Wraps a platform in the screen; `defended = false` screens at `+∞`
    /// (a pass-through recorder).
    fn wrap<R: BlackBoxRecommender>(&self, base: R, defended: bool) -> ScreenedRecommender<R> {
        let thr = if defended { self.threshold } else { f32::INFINITY };
        ScreenedRecommender::new(
            base,
            self.detector.clone(),
            self.pop.clone(),
            self.item_emb.clone(),
            thr,
        )
    }

    /// Precision/recall of "score > threshold ⇒ fake" against the genuine
    /// population, over the pooled scores of one cell's injected profiles.
    fn precision_recall(&self, fake_scores: &[f32]) -> (f32, f32) {
        if fake_scores.is_empty() {
            return (0.0, 0.0);
        }
        let tp = fake_scores.iter().filter(|&&s| s > self.threshold).count() as f32;
        let fp = self.genuine_scores.iter().filter(|&&s| s > self.threshold).count() as f32;
        let precision = if tp + fp > 0.0 { tp / (tp + fp) } else { 0.0 };
        (precision, tp / fake_scores.len() as f32)
    }
}

/// One aggregated matrix cell.
struct Cell {
    attack: String,
    platform: &'static str,
    defended: bool,
    hr20_clean: f32,
    hr20_attacked: f32,
    queries: u64,
    attempted: usize,
    accepted: usize,
    precision: f32,
    recall: f32,
}

impl Cell {
    fn uplift(&self) -> f32 {
        self.hr20_attacked - self.hr20_clean
    }
}

/// Runs every (attack, defense) pair on one platform deployment and pushes
/// the aggregated cells. `pretend` must already be established in `base`.
#[allow(clippy::too_many_arguments)]
fn run_platform<R>(
    label: &'static str,
    base: &R,
    pretend: &[UserId],
    pipe: &Pipeline,
    attacks: &[String],
    targets: &[ItemId],
    def: &Defense,
    out: &mut Vec<Cell>,
) where
    R: BlackBoxRecommender + Scorer + Clone + 'static,
{
    let src = pipe.source_domain();
    let ev = RankingEval::standard(&pipe.split.train);
    let base_cfg = &pipe.config.attack.config;
    for defended in [false, true] {
        for name in attacks {
            let mut hr_clean = 0.0f32;
            let mut hr_attacked = 0.0f32;
            let mut queries = 0u64;
            let mut accepted = 0usize;
            let mut fake_scores: Vec<f32> = Vec::new();
            let mut cells = 0usize;
            for &t in targets {
                let cell_seed = base_cfg.seed ^ t.0 as u64;
                let cfg = AttackConfig { seed: cell_seed, ..base_cfg.clone() };
                let target_src = pipe.world.source_item(t).expect("targets come from the overlap");
                let registry = pipe.registry::<ScreenedRecommender<R>>();
                let mut attack = match registry.build(name, &cfg, &src, target_src) {
                    Ok(a) => a,
                    Err(e) => {
                        eprintln!("skipping {name} on {label} vs {t}: {e}");
                        continue;
                    }
                };
                let mut make_env = || {
                    AttackEnvironment::new(
                        def.wrap(base.clone(), defended),
                        pretend.to_vec(),
                        t,
                        cfg.reward_k,
                        cfg.budget,
                    )
                };
                attack.prepare(&src, &mut make_env);
                let mut env = make_env();
                let mut rng = StdRng::seed_from_u64(cell_seed ^ 0xABCD);
                attack.run(&mut env, &src, target_src, &mut rng);
                queries += env.queries();
                let screened = env.into_recommender();
                fake_scores.extend_from_slice(screened.screened_scores());
                accepted += screened.accepted();
                let polluted = screened.into_inner();
                let mut eval_rng = StdRng::seed_from_u64(cell_seed ^ 0x5EED);
                hr_attacked +=
                    ev.evaluate_promotion(&polluted, &pipe.eval_users, t, &mut eval_rng).hr(20);
                let mut eval_rng = StdRng::seed_from_u64(cell_seed ^ 0x5EED);
                hr_clean += ev.evaluate_promotion(base, &pipe.eval_users, t, &mut eval_rng).hr(20);
                cells += 1;
            }
            if cells == 0 {
                continue;
            }
            let (precision, recall) = def.precision_recall(&fake_scores);
            out.push(Cell {
                attack: name.clone(),
                platform: label,
                defended,
                hr20_clean: hr_clean / cells as f32,
                hr20_attacked: hr_attacked / cells as f32,
                queries,
                attempted: fake_scores.len(),
                accepted,
                precision,
                recall,
            });
            eprintln!(
                "{label:>10} | {name:<18} | defense {} | uplift {:+.4}",
                if defended { "on " } else { "off" },
                out.last().expect("just pushed").uplift()
            );
        }
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn main() {
    let args = Args::parse();
    let smoke: usize = args.get_parse("smoke", 0);
    let preset_name = args.get("preset", "tiny");
    let seed: u64 = args.get_parse("seed", 42);
    let items: usize = args.get_parse("items", 2);

    let cfg: PipelineConfig = preset(&preset_name, seed);
    eprintln!("building pipeline for preset {preset_name} ...");
    let pipe = Pipeline::build(&cfg);
    let def = Defense::fit(&pipe, seed);
    let targets: Vec<ItemId> = pipe.target_items.iter().copied().take(items.max(1)).collect();

    let mut attacks: Vec<String> = pipe
        .registry::<copyattack::gnn::PinSageRecommender>()
        .names()
        .iter()
        .map(|s| s.to_string())
        .collect();
    if smoke > 0 {
        attacks = vec!["RandomAttack".into(), "TargetAttack100".into()];
    }

    let clean = pipe.split.train.clone();
    let establish = |rec: &mut dyn BlackBoxRecommender| -> Vec<UserId> {
        pipe.pretend_profiles.iter().map(|p| rec.inject_user(p)).collect()
    };

    let mut cells: Vec<Cell> = Vec::new();

    // mf: BPR embeddings, the platform family Table 2 attacks.
    let mf_model = copyattack::mf::train(
        &clean,
        &copyattack::mf::BprConfig { max_epochs: 8, seed: seed ^ 21, ..Default::default() },
    );
    let mut mf = MfRecommender::deploy(mf_model, clean.clone());
    let pretend = establish(&mut mf);
    run_platform("mf", &mf, &pretend, &pipe, &attacks, &targets, &def, &mut cells);

    // popularity: the non-personalized floor — promotion must fight raw counts.
    let mut pop = PopularityRecommender::deploy(clean.clone());
    let pretend = establish(&mut pop);
    run_platform("popularity", &pop, &pretend, &pipe, &attacks, &targets, &def, &mut cells);

    if smoke == 0 {
        // ncf: transductive NeuMF with periodic fine-tune refreshes.
        let (ncf_model, _) = copyattack::ncf::train(
            &clean,
            &pipe.split.validation,
            &copyattack::ncf::NcfConfig { max_epochs: 4, seed: seed ^ 22, ..Default::default() },
        );
        // Refresh every 8 injections so the fine-tune cycle engages within
        // one attack budget (the attacker's leverage on a transductive model).
        let mut ncf = NcfRecommender::deploy(ncf_model, clean.clone(), 8, 1);
        let pretend = establish(&mut ncf);
        run_platform("ncf", &ncf, &pretend, &pipe, &attacks, &targets, &def, &mut cells);

        // gnn: the pipeline's own PinSage deployment (pretend users already in).
        let gnn = pipe.recommender.clone();
        run_platform("gnn", &gnn, &pipe.pretend, &pipe, &attacks, &targets, &def, &mut cells);

        // knn: dense item co-occurrence.
        let mut knn = ItemKnnRecommender::deploy(clean.clone());
        let pretend = establish(&mut knn);
        run_platform("knn", &knn, &pretend, &pipe, &attacks, &targets, &def, &mut cells);
    }

    let header = [
        "attack",
        "platform",
        "defense",
        "HR@20 clean",
        "HR@20 attacked",
        "uplift",
        "queries",
        "injected",
        "accepted",
        "det precision",
        "det recall",
    ];
    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            vec![
                c.attack.clone(),
                c.platform.to_string(),
                if c.defended { "on" } else { "off" }.to_string(),
                f4(c.hr20_clean),
                f4(c.hr20_attacked),
                f4(c.uplift()),
                c.queries.to_string(),
                c.attempted.to_string(),
                c.accepted.to_string(),
                f4(c.precision),
                f4(c.recall),
            ]
        })
        .collect();
    print_table(&format!("Attack arena on {preset_name}"), &header, &rows);

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"preset\": \"{}\",", json_escape(&preset_name));
    let _ = writeln!(json, "  \"seed\": {seed},");
    let _ = writeln!(json, "  \"items_per_cell\": {},", targets.len());
    let _ = writeln!(json, "  \"screen_threshold\": {},", def.threshold);
    let _ = writeln!(json, "  \"cells\": [");
    for (i, c) in cells.iter().enumerate() {
        let comma = if i + 1 < cells.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"attack\": \"{}\", \"platform\": \"{}\", \"defense\": {}, \
             \"hr20_clean\": {}, \"hr20_attacked\": {}, \"hr20_uplift\": {}, \
             \"queries\": {}, \"injected\": {}, \"accepted\": {}, \
             \"detector_precision\": {}, \"detector_recall\": {}}}{}",
            json_escape(&c.attack),
            c.platform,
            c.defended,
            c.hr20_clean,
            c.hr20_attacked,
            c.uplift(),
            c.queries,
            c.attempted,
            c.accepted,
            c.precision,
            c.recall,
            comma,
        );
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");
    let path = results_dir().join("BENCH_arena.json");
    std::fs::write(&path, json).expect("write BENCH_arena.json");
    eprintln!("wrote {}", path.display());
}
