//! Service-layer bench for the `ca-serve` live platform: parallel query
//! throughput vs shard count, availability under injected shard-crash
//! rates, and attack efficacy — owner-population HR@20 uplift from a
//! profile-copy promotion — as the platform knobs (organic traffic rate,
//! retrain cadence, shard-crash rate) vary one at a time.
//!
//! ```text
//! cargo run --release -p copyattack-bench --bin serve -- --reps=3
//! ```
//!
//! Before timing, the qps stage asserts the crash-free shard-count
//! invariance contract: every shard count must replay to the same digest
//! and serve the same lists. As with the offline bench, speedups are
//! reported as measured — on a single-core container the wide column
//! shows ~1.0×, which is the honest number for that machine.
//!
//! Emits `results/BENCH_serve.json`.

use std::time::Instant;

use copyattack::datagen::{generate, CrossDomainConfig, OrganicSampler};
use copyattack::par;
use copyattack::pipeline::{Pipeline, PipelineConfig};
use copyattack::recsys::{FallibleBlackBox, UserId};
use copyattack::serve::{LivePlatform, ServeConfig};
use copyattack_bench::{print_table, results_dir, Args};

/// Best-of-`reps` wall time of `f`, in microseconds.
fn time_us(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64() * 1e6);
    }
    best
}

/// A drifted platform over `world` at `n_shards` shards (no fault
/// injection, so every shard count replays the same state).
fn drifted(
    world: &copyattack::datagen::CrossDomainDataset,
    beta: f32,
    cfg: ServeConfig,
) -> LivePlatform {
    let sampler = OrganicSampler::from_truth(&world.truth, beta);
    let mut p = LivePlatform::launch(&world.target, sampler, cfg).expect("valid serve config");
    p.advance(256);
    p
}

fn main() {
    let args = Args::parse();
    let reps: usize = args.get_parse("reps", 3);
    let machine = std::thread::available_parallelism().map_or(1, |n| n.get());
    let wide = machine.max(2);

    // --- Stage 1: parallel query throughput vs shard count ---------------
    let dcfg = CrossDomainConfig::small(0xCA5E);
    let world = generate(&dcfg);
    let n_queries = 4096usize;
    let users: Vec<UserId> =
        (0..n_queries as u32).map(|i| UserId(i % world.target.n_users() as u32)).collect();

    let base_cfg = ServeConfig {
        retrain_every: 64,
        retrain_ticks: 8,
        checkpoint_every: 32,
        ..Default::default()
    };
    let mut qps_rows = Vec::new();
    let mut qps_json = Vec::new();
    let mut reference: Option<(u64, Vec<_>)> = None;
    for shards in [1usize, 2, 4, 8] {
        let p = drifted(
            &world,
            dcfg.affinity_beta,
            ServeConfig { n_shards: shards, ..base_cfg.clone() },
        );
        par::set_threads(Some(1));
        let answers = p.par_serve_queries(&users, 20);
        let t1 = time_us(reps, || {
            let _ = p.par_serve_queries(&users, 20);
        });
        par::set_threads(Some(wide));
        assert_eq!(p.par_serve_queries(&users, 20), answers, "read path diverged across threads");
        let tn = time_us(reps, || {
            let _ = p.par_serve_queries(&users, 20);
        });
        par::set_threads(None);
        // Crash-free shard-count invariance: same digest, same answers.
        match &reference {
            None => reference = Some((p.replay_digest(), answers)),
            Some((digest, lists)) => {
                assert_eq!(p.replay_digest(), *digest, "drift diverged at {shards} shards");
                assert_eq!(&answers, lists, "serving diverged at {shards} shards");
            }
        }
        let (q1, qn) = (n_queries as f64 / (t1 / 1e6), n_queries as f64 / (tn / 1e6));
        qps_rows.push(vec![
            shards.to_string(),
            format!("{t1:.0}"),
            format!("{tn:.0}"),
            format!("{q1:.0}"),
            format!("{qn:.0}"),
            format!("{:.2}", t1 / tn),
        ]);
        qps_json.push(format!(
            concat!(
                "    {{\"shards\": {}, \"queries\": {}, \"serial_us\": {:.1}, ",
                "\"wide_us\": {:.1}, \"serial_qps\": {:.0}, \"wide_qps\": {:.0}}}"
            ),
            shards, n_queries, t1, tn, q1, qn
        ));
    }
    print_table(
        &format!("par_serve_queries qps vs shards (k=20, wide = {wide})"),
        &["shards", "serial_us", "wide_us", "serial_qps", "wide_qps", "x_wide"],
        &qps_rows,
    );

    // --- Stage 2: availability under injected shard-crash rates ----------
    let mut avail_rows = Vec::new();
    let mut avail_json = Vec::new();
    let ticks = 2_000u64;
    for (crash, stall) in [(0.0, 0.0), (0.005, 0.0025), (0.02, 0.01), (0.05, 0.02)] {
        let cfg = ServeConfig {
            n_shards: 4,
            crash_prob: crash,
            stall_prob: stall,
            retrain_every: 48,
            retrain_ticks: 6,
            checkpoint_every: 24,
            stall_detect_ticks: 12,
            restart_base: 8,
            restart_max: 64,
            ..Default::default()
        };
        let sampler = OrganicSampler::from_truth(&world.truth, dcfg.affinity_beta);
        let mut p = LivePlatform::launch(&world.target, sampler, cfg).expect("valid serve config");
        p.advance(ticks);
        for i in 0..500u32 {
            let _ = p.try_top_k(UserId(i % world.target.n_users() as u32), 20);
        }
        let s = p.stats().clone();
        let sum = |f: fn(&copyattack::serve::ShardStats) -> u64| {
            p.shards().iter().map(|sh| f(sh.stats())).sum::<u64>()
        };
        let (crashes, stalls, restarts) =
            (sum(|s| s.crashes), sum(|s| s.stalls), sum(|s| s.restarts));
        avail_rows.push(vec![
            format!("{crash:.3}"),
            format!("{stall:.4}"),
            format!("{:.4}", s.organic_availability()),
            format!("{:.4}", s.tenant_availability()),
            crashes.to_string(),
            stalls.to_string(),
            restarts.to_string(),
            s.models_built.to_string(),
        ]);
        avail_json.push(format!(
            concat!(
                "    {{\"crash_prob\": {}, \"stall_prob\": {}, \"ticks\": {}, ",
                "\"organic_availability\": {:.4}, \"tenant_availability\": {:.4}, ",
                "\"crashes\": {}, \"stalls\": {}, \"restarts\": {}, \"models_built\": {}}}"
            ),
            crash,
            stall,
            ticks,
            s.organic_availability(),
            s.tenant_availability(),
            crashes,
            stalls,
            restarts,
            s.models_built
        ));
    }
    print_table(
        "availability vs injected fault rates (4 shards, 2000 ticks)",
        &[
            "crash_p",
            "stall_p",
            "organic_avail",
            "tenant_avail",
            "crashes",
            "stalls",
            "restarts",
            "models",
        ],
        &avail_rows,
    );

    // --- Stage 3: attack efficacy vs platform knobs -----------------------
    // The promotion is the paper's profile-copy move: the pipeline's
    // crafted pretend profiles, each carrying the target item, injected as
    // tenant accounts. Uplift is the owner population's HR@20 delta once
    // retrains absorb the injected profiles — sensitive to organic
    // dilution, retrain cadence, and checkpoint rollback losing accounts.
    let pipe = Pipeline::build(&PipelineConfig::tiny(42));
    let target = pipe.target_items[0];
    let serve_base = ServeConfig {
        n_shards: 2,
        organic_rate: 2.0,
        retrain_every: 32,
        retrain_ticks: 4,
        checkpoint_every: 16,
        stall_detect_ticks: 12,
        restart_base: 8,
        restart_max: 64,
        ..Default::default()
    };
    let run_attack = |cfg: ServeConfig| {
        let sampler =
            OrganicSampler::from_truth(&pipe.world.truth, pipe.config.world.affinity_beta);
        let mut p =
            LivePlatform::launch(&pipe.world.target, sampler, cfg).expect("valid serve config");
        p.advance(128);
        let before = p.owner_hit_rate(target, 20);
        let mut injected = 0u64;
        for _ in 0..3 {
            for profile in &pipe.pretend_profiles {
                let mut crafted = profile.clone();
                crafted.push(target);
                if p.try_inject_user(&crafted).is_ok() {
                    injected += 1;
                }
            }
        }
        p.advance(384);
        let after = p.owner_hit_rate(target, 20);
        let crashes: u64 = p.shards().iter().map(|s| s.stats().crashes).sum();
        (before, after, injected, crashes, p.stats().organic_availability())
    };
    let grid: Vec<(&str, ServeConfig)> = vec![
        ("base", serve_base.clone()),
        ("organic_0.5", ServeConfig { organic_rate: 0.5, ..serve_base.clone() }),
        ("organic_8.0", ServeConfig { organic_rate: 8.0, ..serve_base.clone() }),
        ("retrain_8", ServeConfig { retrain_every: 8, retrain_ticks: 2, ..serve_base.clone() }),
        (
            "retrain_128",
            ServeConfig { retrain_every: 128, retrain_ticks: 16, ..serve_base.clone() },
        ),
        ("crash_0.02", ServeConfig { crash_prob: 0.02, ..serve_base.clone() }),
        ("crash_0.08", ServeConfig { crash_prob: 0.08, ..serve_base.clone() }),
    ];
    let mut atk_rows = Vec::new();
    let mut atk_json = Vec::new();
    for (name, cfg) in &grid {
        let (before, after, injected, crashes, avail) = run_attack(cfg.clone());
        atk_rows.push(vec![
            name.to_string(),
            format!("{:.1}", cfg.organic_rate),
            cfg.retrain_every.to_string(),
            format!("{:.2}", cfg.crash_prob),
            format!("{before:.4}"),
            format!("{after:.4}"),
            format!("{:+.4}", after - before),
            injected.to_string(),
            crashes.to_string(),
        ]);
        atk_json.push(format!(
            concat!(
                "    {{\"case\": \"{}\", \"organic_rate\": {}, \"retrain_every\": {}, ",
                "\"crash_prob\": {}, \"hr20_before\": {:.4}, \"hr20_after\": {:.4}, ",
                "\"uplift\": {:.4}, \"injected\": {}, \"crashes\": {}, ",
                "\"organic_availability\": {:.4}}}"
            ),
            name,
            cfg.organic_rate,
            cfg.retrain_every,
            cfg.crash_prob,
            before,
            after,
            after - before,
            injected,
            crashes,
            avail
        ));
    }
    print_table(
        "promotion HR@20 uplift vs platform knobs (owner population)",
        &[
            "case",
            "organic",
            "retrain",
            "crash_p",
            "hr20_pre",
            "hr20_post",
            "uplift",
            "inj",
            "crashes",
        ],
        &atk_rows,
    );

    let json = format!(
        concat!(
            "{{\n  \"bench\": \"serve\",\n  \"reps\": {},\n  \"threads\": {},\n",
            "  \"qps_vs_shards\": [\n{}\n  ],\n",
            "  \"availability\": [\n{}\n  ],\n",
            "  \"attack_efficacy\": [\n{}\n  ]\n}}\n"
        ),
        reps,
        machine,
        qps_json.join(",\n"),
        avail_json.join(",\n"),
        atk_json.join(",\n")
    );
    let path = results_dir().join("BENCH_serve.json");
    std::fs::write(&path, json).expect("write BENCH_serve.json");
    println!("wrote {}", path.display());
}
