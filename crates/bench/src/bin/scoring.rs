//! Microbench for the batched scoring engine: scalar per-user ranking (the
//! pre-engine code path) vs `batch_top_k` vs `par_batch_top_k`, over 1k and
//! 10k item catalogs, for one reward round of 50 pretend users.
//!
//! ```text
//! cargo run --release -p copyattack-bench --bin scoring -- --reps=20
//! ```
//!
//! Emits `results/BENCH_scoring.json`.

use std::time::Instant;

use copyattack::mf::{MfModel, MfRecommender};
use copyattack::recsys::engine;
use copyattack::recsys::{BlackBoxRecommender, DatasetBuilder, ItemId, Scorer, UserId};
use copyattack_bench::{f1, print_table, results_dir, Args};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The pre-engine ranking loop: per-item `Scorer` calls, full sort,
/// truncate — exactly what every recommender's bespoke `top_k` used to do.
fn scalar_top_k(rec: &MfRecommender, user: UserId, k: usize) -> Vec<ItemId> {
    let n = rec.data().n_items();
    let mut scored: Vec<(f32, u32)> = (0..n as u32)
        .map(ItemId)
        .filter(|&v| !rec.data().contains(user, v))
        .map(|v| (rec.score(user, v), v.0))
        .collect();
    scored.sort_unstable_by(|a, b| b.0.partial_cmp(&a.0).expect("no NaN scores"));
    scored.truncate(k);
    scored.into_iter().map(|(_, v)| ItemId(v)).collect()
}

fn platform(n_items: usize, n_users: usize, dim: usize, seed: u64) -> MfRecommender {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = DatasetBuilder::new(n_items);
    for _ in 0..n_users {
        let profile: Vec<ItemId> =
            (0..20).map(|_| ItemId(rng.gen_range(0..n_items as u32))).collect();
        b.user(&profile);
    }
    let data = b.build();
    let model = MfModel::new(&mut rng, data.n_users(), data.n_items(), dim);
    MfRecommender::deploy(model, data)
}

/// Best-of-`reps` wall time of `f`, in microseconds.
fn time_us(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64() * 1e6);
    }
    best
}

fn main() {
    let args = Args::parse();
    let reps: usize = args.get_parse("reps", 20);
    let dim: usize = args.get_parse("dim", 64);
    let k: usize = args.get_parse("k", 10);
    let n_pretend: usize = args.get_parse("users", 50);
    let threads = std::thread::available_parallelism().map_or(2, |n| n.get());

    let users: Vec<UserId> = (0..n_pretend as u32).map(UserId).collect();
    let mut rows = Vec::new();
    let mut cases = Vec::new();
    for &catalog in &[1_000usize, 10_000] {
        let rec = platform(catalog, n_pretend, dim, 0xC0FFEE);

        let mut sink = 0usize;
        let scalar = time_us(reps, || {
            for &u in &users {
                sink += scalar_top_k(&rec, u, k).len();
            }
        });
        let batched = time_us(reps, || {
            sink += engine::batch_top_k(&rec, &users, k).iter().map(Vec::len).sum::<usize>();
        });
        let parallel = time_us(reps, || {
            sink += engine::par_batch_top_k(&rec, &users, k, threads)
                .iter()
                .map(Vec::len)
                .sum::<usize>();
        });
        assert!(sink > 0);
        // Sanity: all three paths agree before their timings mean anything.
        for &u in &users {
            assert_eq!(scalar_top_k(&rec, u, k), rec.top_k(u, k), "parity broken at {catalog}");
        }

        rows.push(vec![
            catalog.to_string(),
            format!("{scalar:.0}"),
            format!("{batched:.0}"),
            format!("{parallel:.0}"),
            f1((scalar / batched) as f32),
            f1((scalar / parallel) as f32),
        ]);
        cases.push(format!(
            concat!(
                "    {{\"catalog\": {}, \"users\": {}, \"k\": {}, \"dim\": {}, ",
                "\"scalar_us\": {:.1}, \"batched_us\": {:.1}, \"parallel_us\": {:.1}, ",
                "\"speedup_batched\": {:.2}, \"speedup_parallel\": {:.2}}}"
            ),
            catalog,
            n_pretend,
            k,
            dim,
            scalar,
            batched,
            parallel,
            scalar / batched,
            scalar / parallel,
        ));
    }

    print_table(
        "scoring: one reward round (50 pretend users)",
        &["catalog", "scalar_us", "batched_us", "parallel_us", "x_batched", "x_parallel"],
        &rows,
    );

    let json = format!(
        "{{\n  \"bench\": \"scoring\",\n  \"reps\": {},\n  \"threads\": {},\n  \"cases\": [\n{}\n  ]\n}}\n",
        reps,
        threads,
        cases.join(",\n")
    );
    let path = results_dir().join("BENCH_scoring.json");
    std::fs::write(&path, json).expect("write BENCH_scoring.json");
    println!("wrote {}", path.display());
}
