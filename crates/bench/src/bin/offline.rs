//! Microbench for the deterministic parallel offline pipeline: clustering
//! tree construction, BPR surrogate training, and an 8-target
//! [`ParallelCampaign`], each timed at 1 worker, 2 workers, and the
//! machine's available parallelism via [`par::set_threads`] — the same
//! knob `CA_THREADS` drives.
//!
//! ```text
//! cargo run --release -p copyattack-bench --bin offline -- --reps=5
//! ```
//!
//! Before any timing means anything, each stage asserts bitwise parity
//! between its serial and widest-parallel results (the `ca-par` contract).
//! Speedups are reported as measured: on a single-core container the
//! parallel columns show ~1.0× (plus scheduling overhead), which is the
//! honest number for that machine, not a defect in the runtime.
//!
//! Emits `results/BENCH_offline.json`, plus `results/BENCH_train.json`
//! with per-epoch loss curves and pairs/sec for each model family's
//! training run, captured through the `ca-train` observer hook.

use std::time::Instant;

use copyattack::cluster::ClusterTree;
use copyattack::core::{
    AttackConfig, AttackEnvironment, CopyAttackVariant, ParallelCampaign, SourceDomain,
};
use copyattack::gnn::GnnConfig;
use copyattack::mf::{self, BprConfig};
use copyattack::ncf::NcfConfig;
use copyattack::par;
use copyattack::recsys::{
    split_dataset, BlackBoxRecommender, Dataset, DatasetBuilder, ItemId, UserId,
};
use copyattack::train::{History, StopReason};
use copyattack_bench::{f1, print_table, results_dir, Args};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Best-of-`reps` wall time of `f`, in microseconds.
fn time_us(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64() * 1e6);
    }
    best
}

/// Times `f` at `threads` workers and returns (time, last result).
fn timed_at<T>(threads: usize, reps: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    par::set_threads(Some(threads));
    let mut out = None;
    let us = time_us(reps, || out = Some(f()));
    (us, out.expect("at least one rep"))
}

/// Random user embeddings for the tree-build stage.
fn embeddings(n: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect()).collect()
}

/// Synthetic interaction dataset for the surrogate-training stage.
fn training_world(n_users: usize, n_items: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = DatasetBuilder::new(n_items);
    for _ in 0..n_users {
        let profile: Vec<ItemId> =
            (0..20).map(|_| ItemId(rng.gen_range(0..n_items as u32))).collect();
        b.user(&profile);
    }
    b.build()
}

/// Renders one model's captured training [`History`] as a JSON object with
/// the curves the telemetry satellite promises: per-epoch loss, pairs/sec,
/// and the validation trace (empty for fixed-epoch runs).
fn history_json(model: &str, hist: &History) -> String {
    let join_f32 = |xs: &[f32]| xs.iter().map(|x| format!("{x:.6}")).collect::<Vec<_>>().join(", ");
    let pps: Vec<String> = hist.pairs_per_sec().iter().map(|x| format!("{x:.1}")).collect();
    let stop = match &hist.stop {
        None => "running".to_string(),
        Some(StopReason::MaxEpochs) => "max_epochs".to_string(),
        Some(StopReason::EarlyStop { best_epoch, .. }) => {
            format!("early_stop(best_epoch={best_epoch})")
        }
    };
    format!(
        concat!(
            "    {{\"model\": \"{}\", \"epochs_run\": {}, \"stop\": \"{}\", ",
            "\"loss_curve\": [{}], \"pairs_per_sec\": [{}], \"val_curve\": [{}]}}"
        ),
        model,
        hist.epochs.len(),
        stop,
        join_f32(&hist.loss_curve()),
        pps.join(", "),
        join_f32(&hist.val_curve()),
    )
}

/// Counting bandit platform (same flavor as the campaign test suites):
/// promotion flips on once two injected profiles carry the bridge item.
struct CountingRec {
    good: usize,
    n_users: usize,
    target: ItemId,
}

impl BlackBoxRecommender for CountingRec {
    fn top_k(&self, _u: UserId, k: usize) -> Vec<ItemId> {
        if self.good >= 2 {
            vec![self.target; k.min(1)]
        } else {
            vec![ItemId(9999); k.min(1)]
        }
    }
    fn inject_user(&mut self, profile: &[ItemId]) -> UserId {
        if profile.contains(&ItemId(777)) {
            self.good += 1;
        }
        let id = UserId(self.n_users as u32);
        self.n_users += 1;
        id
    }
    fn catalog_size(&self) -> usize {
        10_000
    }
}

/// Source world where items 0..8 all have carrier users (the 8 targets).
fn campaign_world() -> (Dataset, Vec<ItemId>) {
    let mut b = DatasetBuilder::new(100);
    for u in 0..64u32 {
        let mut profile = vec![ItemId(u % 30 + 30)];
        if u < 24 {
            profile.push(ItemId(u % 8));
            profile.push(ItemId(77));
        }
        profile.push(ItemId((u * 11) % 25));
        b.user(&profile);
    }
    let map: Vec<ItemId> = (0..100).map(|s| ItemId(s * 10 + 7)).collect();
    (b.build(), map)
}

fn main() {
    let args = Args::parse();
    let reps: usize = args.get_parse("reps", 5);
    let machine = std::thread::available_parallelism().map_or(1, |n| n.get());
    // The widest setting we time: the machine's parallelism, but at least 2
    // so the parallel code path is exercised even on a single-core box.
    let wide = machine.max(2);

    let mut rows = Vec::new();
    let mut cases = Vec::new();
    let mut push = |name: &str, size: usize, t1: f64, t2: f64, tn: f64| {
        rows.push(vec![
            name.to_string(),
            size.to_string(),
            format!("{t1:.0}"),
            format!("{t2:.0}"),
            format!("{tn:.0}"),
            f1((t1 / t2) as f32),
            f1((t1 / tn) as f32),
        ]);
        cases.push(format!(
            concat!(
                "    {{\"case\": \"{}\", \"size\": {}, ",
                "\"serial_us\": {:.1}, \"two_us\": {:.1}, \"wide_us\": {:.1}, ",
                "\"speedup_two\": {:.2}, \"speedup_wide\": {:.2}}}"
            ),
            name,
            size,
            t1,
            t2,
            tn,
            t1 / t2,
            t1 / tn,
        ));
    };

    // --- Stage 1: clustering-tree build over 4096 users ------------------
    let emb = embeddings(4096, 16, 0xC0FFEE);
    let (t1, base) = timed_at(1, reps, || ClusterTree::build_seeded(&emb, 8, 7));
    let (t2, _) = timed_at(2, reps, || ClusterTree::build_seeded(&emb, 8, 7));
    let (tn, widest) = timed_at(wide, reps, || ClusterTree::build_seeded(&emb, 8, 7));
    assert!(widest == base, "tree build diverges across thread counts");
    push("tree_build", emb.len(), t1, t2, tn);

    // --- Stage 2: BPR surrogate training -----------------------------------
    let ds = training_world(2_000, 1_000, 0xBEEF);
    // Minibatch past the trainers' PAR_MIN_PAIRS threshold so per-pair
    // gradients actually fan out to workers.
    let cfg = BprConfig { max_epochs: 2, seed: 3, minibatch: 512, ..Default::default() };
    let (t1, base) = timed_at(1, reps, || mf::train(&ds, &cfg));
    let (t2, _) = timed_at(2, reps, || mf::train(&ds, &cfg));
    let (tn, widest) = timed_at(wide, reps, || mf::train(&ds, &cfg));
    assert!(
        widest.user_emb == base.user_emb
            && widest.item_emb == base.item_emb
            && widest.item_bias == base.item_bias,
        "mf training diverges across thread counts"
    );
    push("mf_train", ds.n_users(), t1, t2, tn);

    // --- Stage 3: 8-target parallel campaign -------------------------------
    let (src_ds, map) = campaign_world();
    let surrogate = mf::train(&src_ds, &BprConfig { max_epochs: 3, ..Default::default() });
    let src = SourceDomain { data: &src_ds, mf: &surrogate, to_target: &map };
    let targets: Vec<ItemId> = (0..8u32).map(ItemId).collect();
    let attack = AttackConfig {
        budget: 6,
        n_pretend: 1,
        query_every: 2,
        episodes: 10,
        tree_depth: 2,
        lr: 0.05,
        seed: 11,
        ..Default::default()
    };
    let mut run = || {
        let mut campaign = ParallelCampaign::new(
            attack.clone(),
            CopyAttackVariant::no_crafting(),
            &src,
            targets.clone(),
        );
        campaign.train(&src, |t| {
            AttackEnvironment::new(
                CountingRec { good: 0, n_users: 0, target: map[t.idx()] },
                vec![UserId(0)],
                map[t.idx()],
                5,
                6,
            )
        })
    };
    let (t1, base) = timed_at(1, reps, &mut run);
    let (t2, _) = timed_at(2, reps, &mut run);
    let (tn, widest) = timed_at(wide, reps, &mut run);
    assert_eq!(widest, base, "campaign curves diverge across thread counts");
    push("campaign_8_targets", targets.len(), t1, t2, tn);

    par::set_threads(None);

    // --- Stage 4: per-model training telemetry -----------------------------
    // One real training run per model family, with the epoch-level curves
    // captured through the `ca-train` observer hook.
    let tele_ds = training_world(600, 300, 0xCAFE);
    let mut split_rng = StdRng::seed_from_u64(5);
    let split = split_dataset(&tele_ds, 0.1, &mut split_rng);

    let mut mf_hist = History::new();
    let mf_cfg = BprConfig { max_epochs: 5, seed: 21, minibatch: 128, ..Default::default() };
    mf::train_observed(&split.train, &mf_cfg, &mut mf_hist);

    let mut ncf_hist = History::new();
    let ncf_cfg = NcfConfig { max_epochs: 5, seed: 22, ..Default::default() };
    copyattack::ncf::train_observed(&split.train, &split.validation, &ncf_cfg, &mut ncf_hist);

    let mut gnn_hist = History::new();
    let gnn_cfg = GnnConfig { max_epochs: 5, seed: 23, ..Default::default() };
    copyattack::gnn::train_observed(&split.train, &split.validation, &gnn_cfg, &mut gnn_hist);

    let train_rows: Vec<Vec<String>> = [("mf", &mf_hist), ("ncf", &ncf_hist), ("gnn", &gnn_hist)]
        .iter()
        .map(|(name, h)| {
            let mean_pps = h.pairs_per_sec().iter().sum::<f64>() / h.epochs.len().max(1) as f64;
            vec![
                name.to_string(),
                h.epochs.len().to_string(),
                h.loss_curve().first().map_or("-".into(), |l| format!("{l:.4}")),
                h.loss_curve().last().map_or("-".into(), |l| format!("{l:.4}")),
                format!("{mean_pps:.0}"),
            ]
        })
        .collect();
    print_table(
        "training telemetry (ca-train observer)",
        &["model", "epochs", "loss_first", "loss_last", "pairs_per_sec"],
        &train_rows,
    );

    let train_json = format!(
        "{{\n  \"bench\": \"train\",\n  \"models\": [\n{}\n  ]\n}}\n",
        [
            history_json("mf", &mf_hist),
            history_json("ncf", &ncf_hist),
            history_json("gnn", &gnn_hist)
        ]
        .join(",\n")
    );
    let train_path = results_dir().join("BENCH_train.json");
    std::fs::write(&train_path, train_json).expect("write BENCH_train.json");
    println!("wrote {}", train_path.display());

    print_table(
        &format!("offline pipeline (machine parallelism = {machine}, wide = {wide})"),
        &["stage", "size", "serial_us", "two_us", "wide_us", "x_two", "x_wide"],
        &rows,
    );

    let json = format!(
        "{{\n  \"bench\": \"offline\",\n  \"reps\": {},\n  \"threads\": {},\n  \"cases\": [\n{}\n  ]\n}}\n",
        reps,
        machine,
        cases.join(",\n")
    );
    let path = results_dir().join("BENCH_offline.json");
    std::fs::write(&path, json).expect("write BENCH_offline.json");
    println!("wrote {}", path.display());
}
