//! Extension experiment: detection evasion of copied vs generated profiles.
//!
//! Quantifies the paper's §1 motivation. For each of `--items` target
//! items, (a) generates classical fake promotion profiles and (b) runs
//! CopyAttack; both sets are scored by the `ca-detect` z-score detector
//! fitted on the genuine population. Reports detector AUC and precision.
//!
//! ```text
//! cargo run --release -p copyattack-bench --bin detect_evasion -- --preset=small --items=5
//! ```

use copyattack::core::{CopyAttackAgent, CopyAttackVariant};
use copyattack::detect::features::PopularityIndex;
use copyattack::detect::{detection_auc, extract_features, naive_fake_profiles, ZScoreDetector};
use copyattack::pipeline::{Pipeline, PipelineConfig};
use copyattack::recsys::UserId;
use copyattack_bench::{f4, preset, print_table, write_csv, Args};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = Args::parse();
    let preset_name = args.get("preset", "small");
    let seed: u64 = args.get_parse("seed", 42);
    let cfg: PipelineConfig = preset(&preset_name, seed);
    let items: usize = args.get_parse("items", 5);

    eprintln!("building pipeline for preset {preset_name} ...");
    let pipe = Pipeline::build(&cfg);
    let src = pipe.source_domain();
    let clean = &pipe.split.train;

    let pop = PopularityIndex::build(clean);
    let item_emb = &copyattack::mf::train(
        clean,
        &copyattack::mf::BprConfig { max_epochs: 10, seed: seed ^ 9, ..Default::default() },
    )
    .item_emb;
    let genuine: Vec<_> = (0..clean.n_users() as u32)
        .map(|u| extract_features(clean.profile(UserId(u)), &pop, item_emb))
        .collect();
    let detector = ZScoreDetector::fit(&genuine);
    let genuine_scores: Vec<f32> = genuine.iter().map(|f| detector.score(f)).collect();

    let mut rows = Vec::new();
    let n_items = items.min(pipe.target_items.len());
    for &target in pipe.target_items.iter().take(n_items) {
        let target_src = pipe.world.source_item(target).expect("overlap");
        let mut rng = StdRng::seed_from_u64(seed ^ target.0 as u64);

        let naive = naive_fake_profiles(clean, target, cfg.attack.config.budget, 20, &mut rng);
        let naive_scores: Vec<f32> =
            naive.iter().map(|p| detector.score(&extract_features(p, &pop, item_emb))).collect();

        let run_variant = |variant: CopyAttackVariant| {
            let mut agent = CopyAttackAgent::new(
                copyattack::core::AttackConfig {
                    seed: seed ^ target.0 as u64,
                    ..cfg.attack.config.clone()
                },
                variant,
                &src,
                target_src,
            );
            agent.train(&src, || pipe.make_env(target));
            let mut env = pipe.make_env(target);
            let outcome = agent.execute(&src, &mut env);
            let polluted = env.into_recommender();
            let n_total = polluted.data().n_users();
            (n_total - outcome.injections..n_total)
                .map(|u| {
                    detector.score(&extract_features(
                        polluted.data().profile(UserId(u as u32)),
                        &pop,
                        item_emb,
                    ))
                })
                .collect::<Vec<f32>>()
        };
        let crafted_scores = run_variant(CopyAttackVariant::full());
        let raw_scores = run_variant(CopyAttackVariant::no_crafting());

        let auc_naive = detection_auc(&genuine_scores, &naive_scores);
        let auc_crafted = detection_auc(&genuine_scores, &crafted_scores);
        let auc_raw = detection_auc(&genuine_scores, &raw_scores);
        eprintln!(
            "{target}: AUC generated {auc_naive:.3} vs copied+crafted {auc_crafted:.3} vs copied raw {auc_raw:.3}"
        );
        rows.push(vec![target.to_string(), f4(auc_naive), f4(auc_crafted), f4(auc_raw)]);
    }

    let header = ["target item", "AUC generated fakes", "AUC copied+crafted", "AUC copied raw"];
    print_table(
        &format!("Detection evasion on {preset_name} (0.5 = undetectable)"),
        &header,
        &rows,
    );
    write_csv(&format!("detect_evasion_{preset_name}.csv"), &header, &rows);
}
