//! Ablation sweeps over CopyAttack's RL design choices (DESIGN.md §5):
//! query cadence, discount factor γ, and the reward cutoff k.
//!
//! ```text
//! cargo run --release -p copyattack-bench --bin ablations -- --preset=small --items=6
//! ```

use copyattack::core::AttackConfig;
use copyattack::pipeline::{Method, Pipeline};
use copyattack_bench::{f4, preset, print_table, write_csv, Args};

fn main() {
    let args = Args::parse();
    let preset_name = args.get("preset", "small");
    let seed: u64 = args.get_parse("seed", 42);
    let mut cfg = preset(&preset_name, seed);
    cfg.attack.config.episodes = args.get_parse("episodes", cfg.attack.config.episodes);
    let items: usize = args.get_parse("items", 6);

    eprintln!("building pipeline for preset {preset_name} ...");
    let pipe = Pipeline::build(&cfg);
    let items = items.min(pipe.target_items.len());
    let chosen: Vec<_> = pipe.target_items.iter().copied().take(items).collect();

    let mut rows = Vec::new();
    let mut run = |label: String, attack_cfg: AttackConfig| {
        let row = pipe.run_method_over_items(Method::CopyAttack, &chosen, &attack_cfg);
        eprintln!("{label:<24} HR@20 {:.4} ({:.1}s)", row.metrics.hr(20), row.attack_seconds);
        rows.push(vec![
            label,
            f4(row.metrics.hr(20)),
            f4(row.metrics.ndcg(20)),
            format!("{:.1}", row.avg_items_per_profile),
        ]);
    };

    // 1. Query cadence: how often the attacker spends queries on feedback.
    for q in [1usize, 3, 5, 10] {
        run(
            format!("query_every={q}"),
            AttackConfig { query_every: q, ..cfg.attack.config.clone() },
        );
    }
    // 2. Discount factor γ (paper: 0.6).
    for g in [0.0f32, 0.3, 0.6, 0.9] {
        run(format!("discount={g}"), AttackConfig { discount: g, ..cfg.attack.config.clone() });
    }
    // 3. Reward cutoff k (the Top-k list length the reward inspects).
    for k in [5usize, 10, 20] {
        run(format!("reward_k={k}"), AttackConfig { reward_k: k, ..cfg.attack.config.clone() });
    }
    // 4. State-encoder cell (the paper says only "an RNN model").
    for (label, kind) in [
        ("encoder=rnn", copyattack::core::config::EncoderKind::Rnn),
        ("encoder=gru", copyattack::core::config::EncoderKind::Gru),
    ] {
        run(label.to_string(), AttackConfig { encoder: kind, ..cfg.attack.config.clone() });
    }

    let header = ["configuration", "HR@20", "NDCG@20", "avg items/profile"];
    print_table(
        &format!("CopyAttack RL ablations on {preset_name} ({items} target items)"),
        &header,
        &rows,
    );
    write_csv(&format!("ablations_{preset_name}.csv"), &header, &rows);
}
