//! Shared plumbing for the experiment binaries: tiny CLI parsing, aligned
//! table printing, and CSV emission into `results/`.
//!
//! Every table and figure of the paper has a `src/bin/*.rs` binary here;
//! run them with e.g.
//!
//! ```text
//! cargo run --release -p copyattack-bench --bin table2 -- --preset=ml10m --items=50
//! ```

// Printing result tables to stdout is this crate's purpose; the widened
// library-crate clippy pass in CI bans println! everywhere else.
#![allow(clippy::print_stdout)]

use std::collections::HashMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use copyattack::pipeline::PipelineConfig;

pub mod budget_sweep;

/// `--key=value` argument bag with typed getters.
pub struct Args {
    map: HashMap<String, String>,
}

impl Args {
    /// Parses the process arguments (ignores anything not `--key=value`).
    pub fn parse() -> Self {
        Self::from_args(std::env::args().skip(1))
    }

    /// Parses from an explicit iterator (testable).
    pub fn from_args(iter: impl IntoIterator<Item = String>) -> Self {
        let mut map = HashMap::new();
        for arg in iter {
            if let Some(rest) = arg.strip_prefix("--") {
                if let Some((k, v)) = rest.split_once('=') {
                    map.insert(k.to_string(), v.to_string());
                }
            }
        }
        Self { map }
    }

    /// String value with default.
    pub fn get(&self, key: &str, default: &str) -> String {
        self.map.get(key).cloned().unwrap_or_else(|| default.to_string())
    }

    /// Parsed value with default.
    pub fn get_parse<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.map.get(key).and_then(|v| v.parse().ok()).unwrap_or(default)
    }
}

/// Resolves a `--preset=` name into a pipeline configuration.
///
/// # Panics
/// Panics on an unknown preset name.
pub fn preset(name: &str, seed: u64) -> PipelineConfig {
    match name {
        "tiny" => PipelineConfig::tiny(seed),
        "small" => PipelineConfig::small(seed),
        "ml10m" => PipelineConfig::ml10m_fx(seed),
        "ml20m" => PipelineConfig::ml20m_nf(seed),
        other => panic!("unknown preset {other:?} (expected tiny|small|ml10m|ml20m)"),
    }
}

/// Prints an aligned text table.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut line = String::new();
    for (h, w) in header.iter().zip(&widths) {
        let _ = write!(line, "{h:>w$}  ", w = w);
    }
    println!("{line}");
    for row in rows {
        let mut line = String::new();
        for (cell, w) in row.iter().zip(&widths) {
            let _ = write!(line, "{cell:>w$}  ", w = w);
        }
        println!("{line}");
    }
}

/// Where CSV outputs go (workspace `results/`).
pub fn results_dir() -> PathBuf {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    std::fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// Writes a CSV file into `results/` and reports the path.
pub fn write_csv(name: &str, header: &[&str], rows: &[Vec<String>]) {
    let path = results_dir().join(name);
    let mut out = String::new();
    out.push_str(&header.join(","));
    out.push('\n');
    for row in rows {
        out.push_str(&row.join(","));
        out.push('\n');
    }
    std::fs::write(&path, out).expect("write csv");
    println!("wrote {}", path.display());
}

/// Formats an f32 with 4 decimals (Table 2 style).
pub fn f4(x: f32) -> String {
    format!("{x:.4}")
}

/// Formats an f32 with 1 decimal.
pub fn f1(x: f32) -> String {
    format!("{x:.1}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_parse_key_values() {
        let a =
            Args::from_args(["--preset=ml10m", "--items=7", "junk", "--flag"].map(String::from));
        assert_eq!(a.get("preset", "tiny"), "ml10m");
        assert_eq!(a.get_parse("items", 0usize), 7);
        assert_eq!(a.get_parse("missing", 42u64), 42);
    }

    #[test]
    fn presets_resolve() {
        assert_eq!(preset("tiny", 1).n_target_items, 4);
        assert_eq!(preset("ml10m", 1).attack.config.tree_depth, 3);
        assert_eq!(preset("ml20m", 1).attack.config.tree_depth, 6);
    }

    #[test]
    #[should_panic(expected = "unknown preset")]
    fn unknown_preset_panics() {
        let _ = preset("nope", 1);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f4(0.12341), "0.1234");
        assert_eq!(f1(3.26), "3.3");
    }
}
