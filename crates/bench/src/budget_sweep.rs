//! Shared implementation of the Figure 5 / Figure 6 budget sweeps.

use crate::{f4, preset, print_table, write_csv, Args};
use copyattack::core::AttackConfig;
use copyattack::pipeline::{Method, Pipeline};

/// Runs the budget sweep. `default_preset` picks the dataset when
/// `--preset=` is absent; `figure` names the output CSV.
pub fn run(default_preset: &str, figure: &str) {
    let args = Args::parse();
    let preset_name = args.get("preset", default_preset);
    let seed: u64 = args.get_parse("seed", 42);
    let mut cfg = preset(&preset_name, seed);
    cfg.attack.config.episodes = args.get_parse("episodes", cfg.attack.config.episodes);
    let items: usize = args.get_parse("items", 10);
    let budgets: Vec<usize> = args
        .get("budgets", "3,9,15,21,27,33,39,45")
        .split(',')
        .map(|b| b.parse().expect("bad budget"))
        .collect();

    eprintln!("building pipeline for preset {preset_name} ...");
    let pipe = Pipeline::build(&cfg);
    let items = items.min(pipe.target_items.len());
    let chosen: Vec<_> = pipe.target_items.iter().copied().take(items).collect();

    let methods = [
        Method::RandomAttack,
        Method::TargetAttack(40),
        Method::TargetAttack(70),
        Method::TargetAttack(100),
        Method::CopyAttack,
    ];

    let mut hr_rows = Vec::new();
    let mut ndcg_rows = Vec::new();
    for &budget in &budgets {
        let mut hr_row = vec![budget.to_string()];
        let mut ndcg_row = vec![budget.to_string()];
        for method in methods {
            let attack_cfg = AttackConfig {
                budget,
                query_every: cfg.attack.config.query_every.min(budget),
                ..cfg.attack.config.clone()
            };
            let row = pipe.run_method_over_items(method, &chosen, &attack_cfg);
            eprintln!(
                "budget {budget:>3} {:<16} HR@20 {:.4} ({:.1}s)",
                method.label(),
                row.metrics.hr(20),
                row.attack_seconds
            );
            hr_row.push(f4(row.metrics.hr(20)));
            ndcg_row.push(f4(row.metrics.ndcg(20)));
        }
        hr_rows.push(hr_row);
        ndcg_rows.push(ndcg_row);
    }

    let header = [
        "budget",
        "RandomAttack",
        "TargetAttack40",
        "TargetAttack70",
        "TargetAttack100",
        "CopyAttack",
    ];
    print_table(
        &format!("{figure}: HR@20 vs budget on {preset_name} ({items} target items)"),
        &header,
        &hr_rows,
    );
    print_table(&format!("{figure}: NDCG@20 vs budget on {preset_name}"), &header, &ndcg_rows);
    write_csv(&format!("{figure}_budget_hr20_{preset_name}.csv"), &header, &hr_rows);
    write_csv(&format!("{figure}_budget_ndcg20_{preset_name}.csv"), &header, &ndcg_rows);
}
